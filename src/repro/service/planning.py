"""Backend-independent planning core: queueing, retries, metrics, cache plans.

Everything in this module is pure bookkeeping — no process pools, no child
processes, no fleet files.  The pieces were extracted from the original
``ScanScheduler`` so every execution backend
(:mod:`repro.service.backends`, :mod:`repro.service.fleet`) and every entry
point (scheduler, repair driver, watch daemon, HTTP API) shares one
implementation of:

* :class:`JobQueue` / :class:`QueuedJob` — prioritized FIFO dispatch with
  per-job retry counting (lower ``priority`` first, FIFO within a
  priority, a retried job re-enters behind its peers);
* :class:`JobTimeoutError` — the shared wall-clock/lease failure type;
* :class:`ServiceMetrics` — cumulative service counters plus the bounded
  sorted latency window behind the p50/p95 snapshots;
* :class:`CachePlanner` — the resolve-side cache plan: store lookups,
  in-batch duplicate collapsing, and hit/miss accounting, shared by scan
  batches and repair batches.

The split matters for the fleet: a remote worker process must agree with
the submitter about retry budgets and failure semantics without importing
any executor machinery, and the planning core is that contract.
"""

from __future__ import annotations

import heapq
import threading
from bisect import bisect_left, insort
from collections import deque
from dataclasses import dataclass, field as dataclass_field
from typing import (Any, Callable, Deque, Dict, List, Optional, Sequence,
                    Tuple)

import numpy as np

from ..obs.trace import TRACER, span as _span

__all__ = ["JobTimeoutError", "QueuedJob", "JobQueue", "ServiceMetrics",
           "CachePlanner", "LATENCY_WINDOW"]

#: Number of recent computed-scan latencies kept for percentile snapshots.
LATENCY_WINDOW = 1024


class JobTimeoutError(RuntimeError):
    """A job exceeded its wall-clock budget (and its retry budget, if any).

    Raised by the pool backend for per-job timeouts, and by the fleet
    backend when a job's lease expired past its retry budget — both are the
    same operational condition: the work did not finish inside its bound.
    """


@dataclass(order=True)
class QueuedJob:
    """One queue entry: a payload with scheduling metadata.

    Ordering (what the heap compares) is ``(priority, sequence)``: lower
    priority first, FIFO within a priority.  ``attempts`` counts executions
    so far — a retried job re-enters the queue with a fresh sequence number,
    placing it behind already-queued peers of the same priority.
    """

    priority: int
    sequence: int
    payload: Any = dataclass_field(compare=False)
    attempts: int = dataclass_field(default=0, compare=False)


class JobQueue:
    """Prioritized FIFO job queue with retry bookkeeping (heap-based).

    Not thread-safe by default — the scheduler and the daemon drive it from
    a single dispatcher loop (workers never touch the queue).  Pass
    ``thread_safe=True`` for producers and consumers on different threads
    (the HTTP API's handler threads push while its dispatcher pops): every
    operation then runs under one condition variable, and :meth:`pop` can
    block until a job arrives.
    """

    def __init__(self, thread_safe: bool = False) -> None:
        self._heap: List[QueuedJob] = []
        self._sequence = 0
        self._cond: Optional[threading.Condition] = (
            threading.Condition() if thread_safe else None)

    def push(self, payload: Any, priority: int = 0) -> QueuedJob:
        """Enqueue ``payload``; lower ``priority`` runs first.

        Returns:
            The :class:`QueuedJob` wrapper (useful for later :meth:`requeue`).
        """
        if self._cond is None:
            return self._push(payload, priority, attempts=0)
        with self._cond:
            job = self._push(payload, priority, attempts=0)
            self._cond.notify()
            return job

    def _push(self, payload: Any, priority: int, attempts: int) -> QueuedJob:
        job = QueuedJob(priority=int(priority), sequence=self._sequence,
                        payload=payload, attempts=attempts)
        self._sequence += 1
        heapq.heappush(self._heap, job)
        return job

    def pop(self, block: bool = False,
            timeout: Optional[float] = None) -> QueuedJob:
        """Dequeue the front job (raises :class:`IndexError` when empty).

        Args:
            block: Wait for a job instead of raising immediately (only
                meaningful on a ``thread_safe`` queue).
            timeout: Give up after this many seconds of blocking;
                :class:`IndexError` is raised when the wait expires empty.
        """
        if self._cond is None:
            return heapq.heappop(self._heap)
        with self._cond:
            if block:
                self._cond.wait_for(lambda: bool(self._heap), timeout=timeout)
            return heapq.heappop(self._heap)

    def requeue(self, job: QueuedJob) -> QueuedJob:
        """Re-enqueue a failed job behind same-priority peers, counting the attempt."""
        if self._cond is None:
            return self._push(job.payload, job.priority,
                              attempts=job.attempts + 1)
        with self._cond:
            retry = self._push(job.payload, job.priority,
                               attempts=job.attempts + 1)
            self._cond.notify()
            return retry

    def __len__(self) -> int:
        """Number of queued (not yet popped) jobs."""
        return len(self._heap)

    def __bool__(self) -> bool:
        """True while jobs are queued."""
        return bool(self._heap)


@dataclass
class ServiceMetrics:
    """Cumulative service counters plus scan-latency percentiles.

    The scheduler updates these on every batch; the daemon publishes
    :meth:`snapshot` to its stats endpoint file after each loop iteration.

    Latencies of recent computed scans live in a bounded window
    (:data:`LATENCY_WINDOW`) kept **sorted** alongside the insertion-order
    deque: :meth:`record_latency` is an O(log n) bisect search plus an O(n)
    list shift within the bounded window, and every
    :meth:`latency_percentile` / :meth:`snapshot` reads the percentile
    straight off the sorted window in O(1) — no per-snapshot re-sort, which
    matters for a daemon republishing stats after every loop iteration.
    """

    #: Requests answered (cache hits + fresh computations).
    scans_served: int = 0
    #: Requests answered from the result store (incl. in-batch duplicates).
    cache_hits: int = 0
    #: Requests that required a fresh detector run.
    cache_misses: int = 0
    #: Jobs that exhausted their retry budget.
    failures: int = 0
    #: Retry attempts performed (not counting first attempts).
    retries: int = 0
    #: Clean-activation cache hits observed across mega scans.
    activation_cache_hits: int = 0
    #: Clean-activation cache misses observed across mega scans.
    activation_cache_misses: int = 0

    def __post_init__(self) -> None:
        """Set up the latency window (insertion order + sorted view)."""
        self._window: Deque[float] = deque()
        self._sorted: List[float] = []

    @property
    def latencies(self) -> Tuple[float, ...]:
        """Recent computed-scan latencies, oldest first (read-only view)."""
        return tuple(self._window)

    def record_latency(self, seconds: float) -> None:
        """Add one computed-scan latency to the bounded percentile window."""
        value = float(seconds)
        if len(self._window) >= LATENCY_WINDOW:
            evicted = self._window.popleft()
            del self._sorted[bisect_left(self._sorted, evicted)]
        self._window.append(value)
        insort(self._sorted, value)

    def record_hit(self) -> None:
        """Count one request served from the store."""
        self.scans_served += 1
        self.cache_hits += 1

    def record_miss(self, seconds: Optional[float] = None) -> None:
        """Count one freshly computed request (and its latency, if known)."""
        self.scans_served += 1
        self.cache_misses += 1
        if seconds is not None:
            self.record_latency(seconds)

    def record_activation_cache(self, hits: int, misses: int) -> None:
        """Accumulate clean-activation cache traffic from one mega batch."""
        self.activation_cache_hits += int(hits)
        self.activation_cache_misses += int(misses)

    @property
    def cache_hit_ratio(self) -> float:
        """Hits over served requests (0.0 when nothing was served yet)."""
        return self.cache_hits / self.scans_served if self.scans_served else 0.0

    @property
    def activation_cache_hit_ratio(self) -> float:
        """Activation-cache hits over lookups (0.0 before any lookup)."""
        total = self.activation_cache_hits + self.activation_cache_misses
        return self.activation_cache_hits / total if total else 0.0

    def latency_percentile(self, q: float) -> float:
        """The ``q``-th percentile (0-100) of computed-scan latencies.

        Linear interpolation between closest ranks (the same convention as
        ``numpy.percentile``'s default), read from the pre-sorted window in
        O(1).
        """
        data = self._sorted
        if not data:
            return 0.0
        rank = (len(data) - 1) * float(q) / 100.0
        lower = int(np.floor(rank))
        upper = int(np.ceil(rank))
        if lower == upper:
            return float(data[lower])
        return float(data[lower] + (data[upper] - data[lower]) * (rank - lower))

    def snapshot(self) -> Dict[str, float]:
        """JSON-safe stats payload (the daemon's stats-endpoint schema)."""
        return {
            "scans_served": self.scans_served,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_hit_ratio": round(self.cache_hit_ratio, 4),
            "latency_p50_s": round(self.latency_percentile(50), 4),
            "latency_p95_s": round(self.latency_percentile(95), 4),
            "failures": self.failures,
            "retries": self.retries,
            "activation_cache_hits": self.activation_cache_hits,
            "activation_cache_misses": self.activation_cache_misses,
            "activation_cache_hit_ratio": round(
                self.activation_cache_hit_ratio, 4),
        }


class CachePlanner:
    """The resolve-side half of a batch: store hits, duplicates, misses.

    One planner instance serves one batch.  :meth:`plan` walks the resolved
    items in order and sorts each into *served from the store*, *duplicate
    of an earlier in-batch miss*, or *pending computation*, updating the
    shared :class:`ServiceMetrics` as it goes — exactly the bookkeeping the
    scan and repair drivers used to duplicate inline.

    Args:
        store: Optional result store (``lookup(key)``-capable); without one
            every item is a miss.
        metrics: The batch driver's cumulative counters.
        record_type: When given, a stored record only counts as a hit if it
            is an instance of this type — repair lookups must never serve a
            scan record that happens to share a key namespace.
    """

    def __init__(self, store: Any, metrics: ServiceMetrics,
                 record_type: Optional[type] = None) -> None:
        self.store = store
        self.metrics = metrics
        self.record_type = record_type

    def _lookup(self, key: str) -> Any:
        """The stored record for ``key`` that is servable, or ``None``."""
        if self.store is None:
            return None
        cached = self.store.lookup(key)
        if cached is None:
            return None
        if self.record_type is not None and \
                not isinstance(cached, self.record_type):
            return None
        return cached

    def plan(self, resolved: Sequence[Any], roots: Sequence[Any],
             serve: Callable[[Any, Any], Any],
             span_name: Optional[str] = None
             ) -> Tuple[List[Any], List[Tuple[int, Any]]]:
        """Split a resolved batch into served results and pending work.

        Each item's cache lookup runs inside its root span's context (under
        a ``span_name`` span when one is given), so the lookup cost is
        attributed to the request that paid it.

        Args:
            resolved: Resolved items in request order; each must expose a
                ``key`` attribute.
            roots: Per-item root spans (``None`` entries when tracing is
                off); a hit sets ``cache_hit`` on its root.
            serve: ``serve(cached_record, item)`` produces the cache-hit
                copy placed in the results (see the drivers'
                ``_served_copy`` helpers).
            span_name: Name of the per-item lookup span (``None`` records
                no lookup span — the repair driver's historical shape).

        Returns:
            ``(results, pending)`` — ``results`` has one slot per item
            (``None`` where a computation is still owed, including in-batch
            duplicates that fan out after the pending work completes), and
            ``pending`` lists ``(index, item)`` pairs to execute, one per
            distinct key.
        """
        results: List[Any] = [None] * len(resolved)
        pending: List[Tuple[int, Any]] = []
        pending_keys = set()
        for index, item in enumerate(resolved):
            root = roots[index] if index < len(roots) else None
            with TRACER.context_of(root):
                if span_name:
                    with _span(span_name, store=self.store is not None):
                        cached = self._lookup(item.key)
                else:
                    cached = self._lookup(item.key)
            if cached is not None:
                if root is not None:
                    root.attrs["cache_hit"] = True
                results[index] = serve(cached, item)
                self.metrics.record_hit()
                continue
            if item.key in pending_keys:
                # Duplicate inside this batch: computed once below and served
                # as a hit, so it counts as one.
                if root is not None:
                    root.attrs["cache_hit"] = True
                self.metrics.record_hit()
                continue
            self.metrics.record_miss()
            pending_keys.add(item.key)
            pending.append((index, item))
        return results, pending
