"""Execution backends: where a planned batch of jobs actually runs.

The planning core (:mod:`repro.service.planning`) decides *what* to run;
an :class:`ExecutionBackend` decides *where*.  Three implementations ship:

* :class:`InlineBackend` — serial, in-process: jobs run in queue order in
  the caller, bit-identical to the pool path minus the process hop (the
  test suite's default, and the fallback for single-job batches);
* :class:`PoolBackend` — a ``ProcessPoolExecutor`` per batch with per-job
  wall-clock timeouts, bounded retries, and stuck-worker exclusion (a
  timed-out running task cannot be preempted, so its worker is excluded
  from further dispatch rather than queued behind);
* :class:`~repro.service.fleet.FleetBackend` — independent worker
  processes pulling from a store-adjacent shared queue with lease-based
  ownership (imported lazily via :func:`create_backend` so the scheduler
  never pays for it).

All three satisfy the same contract — ``run(fn, payloads)`` returns
``[fn(p) for p in payloads]`` in order, retrying failed jobs up to the
budget and raising the last error once it is spent — so
:class:`~repro.service.scheduler.ScanScheduler`, the repair driver, the
watch daemon, and the HTTP API dispatch through a backend without caring
which one the operator selected (``--backend inline|pool|fleet``).
"""

from __future__ import annotations

import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..utils.logging import get_logger
from .planning import JobQueue, JobTimeoutError, QueuedJob, ServiceMetrics

__all__ = ["ExecutionBackend", "InlineBackend", "PoolBackend",
           "create_backend", "BACKEND_NAMES"]

_LOG = get_logger("repro.service.backends")

#: Backend specs accepted by :func:`create_backend` (and the CLI flag).
BACKEND_NAMES = ("inline", "pool", "fleet")


class ExecutionBackend:
    """Contract every execution backend implements.

    A backend turns a sequence of picklable payloads and a module-level
    function into results, preserving order, with bounded retries.  It owns
    no resolve/cache logic — callers hand it already-planned work.
    """

    #: Short identifier rendered in logs, metrics, and ``repro report``.
    name = "abstract"

    def run(self, fn: Callable[[Any], Any], payloads: Sequence[Any],
            timeout: Optional[float] = None, retries: int = 0,
            metrics: Optional[ServiceMetrics] = None) -> List[Any]:
        """Apply ``fn`` to every payload, preserving order.

        Args:
            fn: Module-level callable (must pickle for process-based
                backends).
            payloads: Job inputs; results come back in the same order.
            timeout: Per-job wall-clock budget in seconds (``None``
                disables it; inline execution cannot be preempted, so only
                process-based backends enforce it).
            retries: Retry budget per job — a failed job is re-queued up to
                this many times before its last error fails the batch.
            metrics: Optional counters to update (``retries`` /
                ``failures``).

        Returns:
            ``[fn(p) for p in payloads]``.
        """
        raise NotImplementedError

    def close(self) -> None:
        """Release backend resources (no-op by default)."""

    def __repr__(self) -> str:
        """``<BackendClass 'name'>`` for logs and debugging."""
        return f"<{type(self).__name__} {self.name!r}>"


def _run_serial(fn: Callable[[Any], Any], queue: JobQueue,
                results: List[Any], retries: int,
                metrics: ServiceMetrics) -> None:
    """Drain ``queue`` inline: run each job in the caller, retrying in place."""
    while queue:
        job = queue.pop()
        index, payload = job.payload
        try:
            results[index] = fn(payload)
        except Exception:
            if job.attempts < retries:
                metrics.retries += 1
                queue.requeue(job)
                continue
            metrics.failures += 1
            raise


class InlineBackend(ExecutionBackend):
    """Serial in-process execution: the deterministic fallback path.

    Jobs run in queue order inside the calling process — bit-identical to
    the pool path (pool workers fork with the same seeds), just without the
    process hop, which also means a per-job ``timeout`` cannot be enforced.
    """

    name = "inline"

    def run(self, fn: Callable[[Any], Any], payloads: Sequence[Any],
            timeout: Optional[float] = None, retries: int = 0,
            metrics: Optional[ServiceMetrics] = None) -> List[Any]:
        """Run every payload inline, in queue order (see the base contract)."""
        items = list(payloads)
        metrics = metrics if metrics is not None else ServiceMetrics()
        queue = JobQueue()
        for index, payload in enumerate(items):
            queue.push((index, payload))
        results: List[Any] = [None] * len(items)
        _run_serial(fn, queue, results, int(retries), metrics)
        return results


class PoolBackend(ExecutionBackend):
    """Process-pool execution with timeouts, retries, and stuck exclusion.

    Args:
        workers: Pool size ceiling; a batch never spawns more workers than
            it has jobs.  Batches of one job (or ``workers <= 1``) fall
            back to inline execution — the process hop buys nothing there.

    A fresh ``ProcessPoolExecutor`` is created per batch, so :meth:`close`
    has nothing persistent to release.  A job that exceeds ``timeout`` is
    marked failed/retryable, but a *running* task cannot be preempted: its
    worker is counted stuck, excluded from further dispatch, and only
    reclaimed at pool shutdown (the watch daemon uses killable child
    processes instead; see :class:`repro.service.daemon.ChildBackend`).
    """

    def __init__(self, workers: int) -> None:
        self.workers = int(workers)
        self.name = "pool"

    def run(self, fn: Callable[[Any], Any], payloads: Sequence[Any],
            timeout: Optional[float] = None, retries: int = 0,
            metrics: Optional[ServiceMetrics] = None) -> List[Any]:
        """Run the batch across a fresh process pool (see the base contract)."""
        items = list(payloads)
        retries = int(retries)
        metrics = metrics if metrics is not None else ServiceMetrics()
        queue = JobQueue()
        for index, payload in enumerate(items):
            queue.push((index, payload))
        results: List[Any] = [None] * len(items)
        if self.workers <= 1 or len(items) <= 1:
            _run_serial(fn, queue, results, retries, metrics)
            return results

        max_workers = min(self.workers, len(items))
        pool = ProcessPoolExecutor(max_workers=max_workers)
        running: Dict[Any, Tuple[QueuedJob, float]] = {}
        #: Workers presumed wedged on a timed-out task (a pool cannot preempt
        #: a running job).  They shrink the dispatch capacity so queued jobs
        #: are never submitted behind a stuck worker — where their timeout
        #: clock would run without the job ever starting.
        stuck = 0
        try:

            def _dispatch() -> None:
                while queue and len(running) < max_workers - stuck:
                    job = queue.pop()
                    future = pool.submit(fn, job.payload[1])
                    running[future] = (job, time.monotonic())

            _dispatch()
            while running:
                expiries = [started + timeout for _, started in running.values()
                            ] if timeout is not None else []
                wait_budget = (max(0.0, min(expiries) - time.monotonic())
                               if expiries else None)
                done, _ = wait(set(running), timeout=wait_budget,
                               return_when=FIRST_COMPLETED)
                now = time.monotonic()
                expired = [future for future, (_, started) in running.items()
                           if timeout is not None and future not in done
                           and now - started >= timeout]
                for future in list(done) + expired:
                    job, _started = running.pop(future)
                    error: Optional[BaseException] = None
                    if future in done:
                        error = future.exception()
                        if error is None:
                            results[job.payload[0]] = future.result()
                            continue
                    else:
                        if not future.cancel():
                            # Already running: that worker is occupied until
                            # the abandoned task finishes, if it ever does.
                            stuck += 1
                        error = JobTimeoutError(
                            f"job {job.payload[0]} exceeded {timeout:.1f}s "
                            f"(attempt {job.attempts + 1}).")
                    if job.attempts < retries:
                        _LOG.warning("Retrying job %d after %s", job.payload[0],
                                     error)
                        metrics.retries += 1
                        queue.requeue(job)
                    else:
                        metrics.failures += 1
                        raise error
                _dispatch()
            if queue:
                # Every worker is wedged on an abandoned task; the queued
                # remainder can never start.
                metrics.failures += 1
                raise JobTimeoutError(
                    f"{len(queue)} queued job(s) starved: all {max_workers} "
                    "worker(s) are stuck on timed-out jobs.")
        finally:
            # With wedged workers a wait=True shutdown would block forever;
            # abandon the pool instead (its processes die with the parent).
            pool.shutdown(wait=stuck == 0, cancel_futures=stuck > 0)
        return results


def create_backend(spec: str, workers: int = 0,
                   store_path: Optional[str] = None,
                   **fleet_options: Any) -> ExecutionBackend:
    """Build the backend a ``--backend`` spec names.

    Args:
        spec: One of :data:`BACKEND_NAMES` (``inline`` / ``pool`` /
            ``fleet``).
        workers: Pool size for the ``pool`` backend (ignored otherwise).
        store_path: Store path the ``fleet`` backend coordinates through
            (required for ``fleet``: its job/lease tables live next to the
            store so every worker sharing the filesystem sees them).
        **fleet_options: Forwarded to
            :class:`~repro.service.fleet.FleetBackend` (``lease_seconds``,
            ``poll_interval``, ``tenant``, ...).

    Returns:
        A ready :class:`ExecutionBackend`.

    Raises:
        ValueError: Unknown spec, or ``fleet`` without a ``store_path``.
    """
    kind = str(spec).lower()
    if kind == "inline":
        return InlineBackend()
    if kind == "pool":
        return PoolBackend(workers=workers)
    if kind == "fleet":
        if not store_path:
            raise ValueError(
                "--backend fleet needs a store path: the fleet queue lives "
                "next to the store so workers can find it.")
        from .fleet import FleetBackend
        return FleetBackend(store_path, **fleet_options)
    raise ValueError(f"Unknown backend '{spec}'. "
                     f"Available: {', '.join(BACKEND_NAMES)}")
