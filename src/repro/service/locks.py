"""Advisory file locks and atomic file replacement for multi-writer stores.

The sharded result store (:mod:`repro.service.store`) serializes writers per
shard with :class:`FileLock`, a POSIX ``flock``-based advisory lock.  Kernel
advisory locks are released automatically when the holding process exits (or
crashes), so a dead writer never wedges the store — "lock recovery" is a
no-op by construction (see ``docs/ops.md``).  On platforms without ``fcntl``
the lock degrades to a no-op and writers rely on single-``write`` ``O_APPEND``
appends alone, which local filesystems keep line-atomic for JSONL-sized
records.

:func:`atomic_write` is the companion primitive for whole-file rewrites
(compaction, manifests, the daemon's stats endpoint): write to a temp file in
the target directory, flush + fsync, then ``os.replace`` so readers only ever
observe the old or the new content, never a torn mix.
"""

from __future__ import annotations

import os
import tempfile
import time
from types import TracebackType
from typing import Optional, Type

try:  # POSIX only; the store degrades gracefully without it.
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None  # type: ignore[assignment]

from ..utils.logging import get_logger

__all__ = ["FileLock", "LockTimeout", "atomic_write"]

_LOG = get_logger("repro.service.locks")


class LockTimeout(TimeoutError):
    """Raised when a :class:`FileLock` cannot be acquired within its timeout."""


class FileLock:
    """Advisory exclusive lock on a lock file (``flock``-based, re-entrant-free).

    Args:
        path: Lock-file path; created (empty) on first acquisition.  The lock
            protects whatever resource its holders agree it protects — the
            sharded store uses one lock file per shard.
        timeout: Seconds to wait for the lock before raising
            :class:`LockTimeout`.  ``None`` blocks forever.
        poll_interval: Sleep between non-blocking acquisition attempts.

    Returns:
        A context manager: ``with FileLock(path): ...`` holds the lock for
        the duration of the block.

    The lock is *advisory*: only cooperating processes that take the same
    lock are serialized.  It is held by an open file descriptor, so the
    kernel releases it when the holder exits for any reason.
    """

    def __init__(self, path: str, timeout: Optional[float] = 30.0,
                 poll_interval: float = 0.02) -> None:
        self.path = os.fspath(path)
        self.timeout = timeout
        self.poll_interval = float(poll_interval)
        self._fd: Optional[int] = None

    @property
    def held(self) -> bool:
        """True while this instance holds the lock."""
        return self._fd is not None

    def acquire(self) -> None:
        """Take the lock, waiting up to ``timeout`` seconds.

        Raises:
            LockTimeout: the lock stayed held by another process past the
                timeout.
        """
        if self._fd is not None:
            raise RuntimeError(f"{self.path}: lock already held by this object.")
        directory = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(directory, exist_ok=True)
        fd = os.open(self.path, os.O_CREAT | os.O_RDWR, 0o644)
        if fcntl is None:  # pragma: no cover - non-POSIX platforms
            self._fd = fd
            return
        deadline = (time.monotonic() + self.timeout
                    if self.timeout is not None else None)
        while True:
            try:
                fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
                self._fd = fd
                return
            except OSError:
                if deadline is not None and time.monotonic() >= deadline:
                    os.close(fd)
                    raise LockTimeout(
                        f"{self.path}: could not acquire lock within "
                        f"{self.timeout:.1f}s.") from None
                time.sleep(self.poll_interval)

    def release(self) -> None:
        """Drop the lock (no-op when not held)."""
        if self._fd is None:
            return
        try:
            if fcntl is not None:
                fcntl.flock(self._fd, fcntl.LOCK_UN)
        finally:
            os.close(self._fd)
            self._fd = None

    def __enter__(self) -> "FileLock":
        self.acquire()
        return self

    def __exit__(self, exc_type: Optional[Type[BaseException]],
                 exc: Optional[BaseException],
                 tb: Optional[TracebackType]) -> None:
        self.release()


def atomic_write(path: str, text, encoding: str = "utf-8") -> None:
    """Replace ``path`` with ``text`` atomically (temp file + ``os.replace``).

    Args:
        path: Destination file; parent directories are created as needed.
        text: Full new content — ``str`` (written with ``encoding``) or
            ``bytes`` (written verbatim; used for binary artifacts like the
            repaired ``.npz`` checkpoints).
        encoding: Text encoding when ``text`` is a string.

    Readers never observe a partially-written file: the temp file lives in
    the destination directory (same filesystem), is fsynced, and is swapped
    in with a single atomic rename.
    """
    path = os.fspath(path)
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    fd, tmp_path = tempfile.mkstemp(dir=directory,
                                    prefix=os.path.basename(path) + ".tmp.")
    binary = isinstance(text, (bytes, bytearray))
    try:
        with os.fdopen(fd, "wb" if binary else "w",
                       encoding=None if binary else encoding) as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:  # pragma: no cover - best-effort cleanup
            pass
        raise
