"""HTTP front end for the scanning service: submit, poll, fetch, observe.

``python -m repro serve <store>`` boots a stdlib
:class:`~http.server.ThreadingHTTPServer` (no third-party dependencies)
over the existing scheduler + store stack:

* ``POST /v1/scans`` / ``POST /v1/repairs`` — enqueue a job onto the
  shared multi-tenant :class:`~repro.service.scheduler.JobQueue`
  (``priority`` in the payload: lower runs first, FIFO within a priority;
  ``tenant`` labels the job).  Scan payloads may carry a ``strategy``
  (``fastest|cheapest|thorough``) to run the
  :mod:`~repro.service.routing` triage plan instead of a single detector.
* ``GET /v1/jobs/<id>`` — job status (``queued/running/done/failed``)
  with attempt/retry bookkeeping and the job's trace id.
* ``GET /v1/jobs/<id>/result`` — the full result payload: record JSON
  including the telemetry block, plus the triage ``cost_breakdown`` for
  routed scans.
* ``GET /v1/traces/<trace_id>`` — the stitched span tree of one request,
  read from the store's ``spans.jsonl`` sidecar.
* ``GET /metrics`` — Prometheus text exposition:
  :func:`~repro.obs.metrics.build_service_registry` over a fresh store
  replay, concatenated with the API's own ``repro_http_*`` /
  ``repro_triage_*`` families.
* ``GET /healthz`` — liveness probe (used by the smoke script).

**Threading model.**  Handler threads only parse payloads, mutate the
job table under its lock, and push onto the queue; one dispatcher thread
pops jobs and drives the (single-threaded) :class:`ScanScheduler`, so
store writes stay single-writer while N clients submit and poll
concurrently.  ``/metrics`` never touches the dispatcher's store handle:
it replays the store from disk per request.

**Tracing.**  Every submitted job is assigned a trace id up front (it is
returned by the submit call); the dispatcher roots an ``api.job`` span
under that id and runs the scheduler inside its context, so the whole
escalation plan — job root, per-stage ``scan.request`` roots, worker
spans — lands in ``spans.jsonl`` as one stitched tree retrievable over
``GET /v1/traces/<trace_id>``.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, field
from datetime import datetime, timezone
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple
from urllib.parse import urlparse
from uuid import uuid4

from ..obs.metrics import MetricsRegistry, build_service_registry
from ..obs.trace import TRACER, new_trace_id, read_spans, write_spans
from ..utils.logging import get_logger
from .fleet import fleet_snapshot
from .records import ScanRequest
from .repair import RepairRequest, run_repairs
from .routing import STRATEGIES, RoutingPolicy, route_scan
from .scheduler import JobQueue, ScanScheduler
from .store import SPANS_NAME, open_store, sidecar_path

__all__ = ["ApiJob", "ApiServer", "DEFAULT_TENANT"]

_LOG = get_logger("repro.service.api")

#: Tenant label applied when a submit payload does not name one.
DEFAULT_TENANT = "default"

#: HTTP-request latency buckets: handlers answer in ms, scans in seconds.
_HTTP_LATENCY_BUCKETS = (0.005, 0.025, 0.1, 0.5, 1.0, 2.5, 10.0, 60.0)


def _utc_now() -> str:
    return datetime.now(timezone.utc).isoformat(timespec="seconds")


@dataclass
class ApiJob:
    """One submitted API job: its request, scheduling state, and outcome."""

    #: Server-assigned job identifier (``job-<12 hex>``).
    job_id: str
    #: ``"scan"`` or ``"repair"``.
    kind: str
    #: Tenant label from the submit payload (isolation is by job id —
    #: ids are unguessable — the label exists for accounting and audits).
    tenant: str
    #: Queue priority (lower runs first, FIFO within a priority).
    priority: int
    #: Trace id assigned at submit time; the whole job runs under it.
    trace_id: str
    #: Parsed request (:class:`ScanRequest` or :class:`RepairRequest`).
    request: Any
    #: Triage strategy for routed scans (``None`` = plain single-detector).
    strategy: Optional[str] = None
    #: ``queued`` -> ``running`` -> ``done`` | ``failed`` (a retried job
    #: goes back to ``queued``).
    status: str = "queued"
    #: Executions started so far (1 on the first run; retries increment).
    attempts: int = 0
    #: Result payload once ``done`` (record dict, or triage dict).
    result: Optional[Dict[str, Any]] = None
    #: Last error message once ``failed`` (or between retries).
    error: Optional[str] = None
    created_at: str = ""
    started_at: Optional[str] = None
    finished_at: Optional[str] = None

    def status_dict(self) -> Dict[str, Any]:
        """The ``GET /v1/jobs/<id>`` payload (everything but the result)."""
        return {
            "job_id": self.job_id,
            "kind": self.kind,
            "tenant": self.tenant,
            "priority": self.priority,
            "status": self.status,
            "attempts": self.attempts,
            "retries": max(0, self.attempts - 1),
            "strategy": self.strategy,
            "trace_id": self.trace_id,
            "error": self.error,
            "created_at": self.created_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
        }


class _BadRequest(ValueError):
    """A submit payload the server must answer with 400."""


def _parse_scan_submit(payload: Dict[str, Any]
                       ) -> Tuple[ScanRequest, Optional[str]]:
    """Parse a ``POST /v1/scans`` body into (request, strategy)."""
    strategy = payload.get("strategy")
    if strategy is not None:
        strategy = str(strategy).lower()
        if strategy not in STRATEGIES:
            raise _BadRequest(f"unknown strategy '{strategy}' "
                              f"(available: {', '.join(STRATEGIES)})")
    if not payload.get("checkpoint"):
        raise _BadRequest("scan payload needs a 'checkpoint' path")
    try:
        request = ScanRequest.from_dict(payload)
    except (TypeError, ValueError) as error:
        raise _BadRequest(str(error)) from error
    return request, strategy


def _parse_repair_submit(payload: Dict[str, Any]) -> RepairRequest:
    """Parse a ``POST /v1/repairs`` body (nested ``scan`` or flat)."""
    body = dict(payload)
    if "scan" not in body:
        if not body.get("checkpoint"):
            raise _BadRequest("repair payload needs a nested 'scan' request "
                              "or a top-level 'checkpoint' path")
        body["scan"] = {k: v for k, v in body.items()}
    try:
        return RepairRequest.from_dict(body)
    except (TypeError, KeyError, ValueError) as error:
        raise _BadRequest(str(error)) from error


class ApiServer:
    """The scan/repair HTTP service: queue, dispatcher, and HTTP listener.

    Args:
        store_path: Result store (any :func:`~repro.service.open_store`
            layout); scans/repairs are cached there exactly as the CLI's.
        host: Bind address (default loopback).
        port: Bind port; ``0`` picks an ephemeral port (see :attr:`port`).
        workers: Scheduler pool size (``0``/``1`` runs scans inline on the
            dispatcher thread).
        job_retries: Times a failed job is re-queued before ``failed``.
        telemetry: Tracing/profiling toggle (``None`` follows
            ``REPRO_TELEMETRY``).
        backend: Execution backend spec (``inline`` / ``pool`` / ``fleet``)
            forwarded to the scheduler; ``None`` keeps the historical
            worker-count heuristic.  With ``fleet``, the dispatcher labels
            each batch with the submitting job's tenant so the shared queue
            tracks per-tenant depth.
    """

    def __init__(self, store_path: str, host: str = "127.0.0.1",
                 port: int = 0, workers: int = 0, job_retries: int = 0,
                 telemetry: Optional[bool] = None,
                 backend: Optional[str] = None) -> None:
        self.store_path = str(store_path)
        self.span_sink = sidecar_path(self.store_path, SPANS_NAME)
        self.scheduler = ScanScheduler(
            store=open_store(self.store_path), workers=workers,
            telemetry=telemetry, span_sink=self.span_sink, backend=backend)
        self.job_retries = int(job_retries)
        self.queue = JobQueue(thread_safe=True)
        self._jobs: Dict[str, ApiJob] = {}
        self._jobs_lock = threading.Lock()
        self._stop = threading.Event()
        self._dispatcher: Optional[threading.Thread] = None
        self._registry = MetricsRegistry()
        self._registry_lock = threading.Lock()
        self._server = ThreadingHTTPServer((host, int(port)), _Handler)
        self._server.daemon_threads = True
        self._server.api = self  # type: ignore[attr-defined]

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    @property
    def port(self) -> int:
        """The bound TCP port (resolved when ``port=0`` was requested)."""
        return int(self._server.server_address[1])

    @property
    def host(self) -> str:
        """The bound address."""
        return str(self._server.server_address[0])

    def start(self, dispatch: bool = True) -> "ApiServer":
        """Start the dispatcher and HTTP listener threads; returns self.

        Args:
            dispatch: Start the job dispatcher (pass False to accept and
                queue submissions without executing them — useful for
                tests and for staging a queue before a maintenance window).
        """
        if dispatch:
            self._dispatcher = threading.Thread(target=self._dispatch_loop,
                                                name="api-dispatcher",
                                                daemon=True)
            self._dispatcher.start()
        listener = threading.Thread(target=self._server.serve_forever,
                                    name="api-listener", daemon=True)
        listener.start()
        _LOG.info("serving on http://%s:%d (store: %s)", self.host,
                  self.port, self.store_path)
        return self

    def serve_forever(self) -> None:
        """Blocking variant of :meth:`start` (the CLI entry point)."""
        self.start()
        try:
            while not self._stop.is_set():
                time.sleep(0.5)
        except KeyboardInterrupt:
            _LOG.info("interrupt received; draining.")
        finally:
            self.close(drain=True)

    def close(self, drain: bool = False) -> None:
        """Stop accepting requests and shut the dispatcher down.

        Args:
            drain: Finish every queued job before exiting (the in-flight
                job always completes either way).
        """
        self._server.shutdown()
        self._server.server_close()
        if drain:
            while len(self.queue):
                time.sleep(0.05)
        self._stop.set()
        if self._dispatcher is not None:
            self._dispatcher.join(timeout=60.0)

    # ------------------------------------------------------------------ #
    # Job table
    # ------------------------------------------------------------------ #
    def submit(self, kind: str, request: Any, tenant: str = DEFAULT_TENANT,
               priority: int = 0, strategy: Optional[str] = None) -> ApiJob:
        """Register a job and enqueue it; returns the queued :class:`ApiJob`."""
        job = ApiJob(job_id=f"job-{uuid4().hex[:12]}", kind=kind,
                     tenant=str(tenant), priority=int(priority),
                     trace_id=new_trace_id(), request=request,
                     strategy=strategy, created_at=_utc_now())
        with self._jobs_lock:
            self._jobs[job.job_id] = job
        self.queue.push(job.job_id, priority=job.priority)
        with self._registry_lock:
            self._registry.counter(
                "repro_http_jobs_submitted_total",
                "Jobs accepted over the HTTP API",
                labels={"kind": kind}).inc()
        return job

    def job(self, job_id: str) -> Optional[ApiJob]:
        """Look one job up by id (``None`` when unknown)."""
        with self._jobs_lock:
            return self._jobs.get(job_id)

    # ------------------------------------------------------------------ #
    # Dispatcher (the only thread that touches the scheduler/store)
    # ------------------------------------------------------------------ #
    def _dispatch_loop(self) -> None:
        """Pop queued jobs and execute them serially until :meth:`close`."""
        while not self._stop.is_set():
            try:
                queued = self.queue.pop(block=True, timeout=0.2)
            except IndexError:
                continue
            job = self.job(str(queued.payload))
            if job is None:
                continue
            with self._jobs_lock:
                job.status = "running"
                job.attempts = queued.attempts + 1
                job.started_at = _utc_now()
                job.error = None
            try:
                result = self._execute(job)
            except Exception as error:  # noqa: BLE001  # repro-lint: disable=exception-hygiene
                # Any job failure (bad checkpoint, detector crash) must be
                # reported to the polling client, never kill the dispatcher.
                message = f"{type(error).__name__}: {error}"
                with self._jobs_lock:
                    if queued.attempts < self.job_retries:
                        job.status = "queued"
                        job.error = message
                        self.queue.requeue(queued)
                        _LOG.warning("job %s failed (%s); retrying "
                                     "(attempt %d/%d).", job.job_id, message,
                                     queued.attempts + 1, self.job_retries + 1)
                    else:
                        job.status = "failed"
                        job.error = message
                        job.finished_at = _utc_now()
                        _LOG.warning("job %s failed permanently: %s",
                                     job.job_id, message)
                continue
            with self._jobs_lock:
                job.status = "done"
                job.result = result
                job.finished_at = _utc_now()

    def _execute(self, job: ApiJob) -> Dict[str, Any]:
        """Run one job under its trace and return the result payload."""
        tracing = self.scheduler.telemetry
        root = None
        if tracing:
            TRACER.check_fork()
            TRACER.enable()
            root = TRACER.begin("api.job", trace_id=job.trace_id,
                                kind=job.kind, job_id=job.job_id,
                                tenant=job.tenant)
        # The fleet backend tags submitted jobs with a tenant so the shared
        # queue can report per-tenant depth; only the (single) dispatcher
        # thread touches the scheduler, so this mutation cannot race.
        if hasattr(self.scheduler.backend, "tenant"):
            self.scheduler.backend.tenant = job.tenant
        try:
            with TRACER.context_of(root):
                if job.kind == "repair":
                    record = run_repairs(self.scheduler, [job.request])[0]
                    return record.to_dict() | {"cache_hit": record.cache_hit}
                if job.strategy is not None:
                    triage = route_scan(self.scheduler, job.request,
                                        RoutingPolicy(strategy=job.strategy))
                    self._count_triage(triage.cost_breakdown)
                    return triage.to_dict()
                record = self.scheduler.scan_one(job.request)
                return record.to_dict() | {"cache_hit": record.cache_hit}
        finally:
            if root is not None:
                TRACER.finish(root)
                write_spans(self.span_sink, TRACER.drain())

    def _count_triage(self, breakdown: Dict[str, Any]) -> None:
        """Export one triage cost breakdown into the API metric families."""
        with self._registry_lock:
            strategy = {"strategy": str(breakdown.get("strategy"))}
            self._registry.counter(
                "repro_triage_requests_total",
                "Strategy-routed triage requests executed",
                labels=strategy).inc()
            if breakdown.get("escalated"):
                self._registry.counter(
                    "repro_triage_escalations_total",
                    "Triage requests that escalated past the probe detector",
                    labels=strategy).inc()
            for stage in breakdown.get("stages", []):
                labels = {"detector": str(stage.get("detector"))}
                self._registry.counter(
                    "repro_triage_stages_run_total",
                    "Triage stages executed, by detector",
                    labels=labels).inc()
                self._registry.counter(
                    "repro_triage_stage_seconds_total",
                    "Fresh detector-seconds paid by triage stages",
                    labels=labels).inc(float(stage.get("seconds", 0.0)))
            for stage in breakdown.get("skipped", []):
                self._registry.counter(
                    "repro_triage_stages_skipped_total",
                    "Triage stages skipped by the escalation policy",
                    labels={"detector": str(stage.get("detector"))}).inc()

    # ------------------------------------------------------------------ #
    # Observability endpoints
    # ------------------------------------------------------------------ #
    def observe_http(self, method: str, route: str, code: int,
                     seconds: float) -> None:
        """Record one handled HTTP request into the API metric families."""
        with self._registry_lock:
            self._registry.counter(
                "repro_http_requests_total",
                "HTTP requests handled by the scan API",
                labels={"method": method, "route": route,
                        "code": str(code)}).inc()
            self._registry.histogram(
                "repro_http_request_latency_seconds",
                "Wall-clock seconds spent handling API requests",
                labels={"route": route},
                buckets=_HTTP_LATENCY_BUCKETS).observe(seconds)

    def metrics_text(self) -> str:
        """The full ``/metrics`` exposition: store families + API families.

        The store families are rebuilt from a *fresh* store replay so this
        (handler-thread) read never races the dispatcher's store handle;
        family names are disjoint (``repro_http_*`` / ``repro_triage_*``
        vs the service's ``repro_*``), so the concatenation stays a valid
        single exposition.
        """
        rows = [record.to_dict()
                for record in open_store(self.store_path).scan_records()]
        stats = {"metrics": self.scheduler.metrics.snapshot(),
                 "queue_depth": len(self.queue),
                 "backend": self.scheduler.backend.name}
        fleet = fleet_snapshot(self.store_path)
        if fleet is not None:
            stats["fleet"] = fleet
        service = build_service_registry(rows, stats).render()
        with self._registry_lock:
            self._registry.gauge(
                "repro_http_jobs",
                "Jobs known to the API, by status",
                labels={"status": "queued"}).set(self._status_count("queued"))
            self._registry.gauge(
                "repro_http_jobs",
                "Jobs known to the API, by status",
                labels={"status": "running"}).set(self._status_count("running"))
            api = self._registry.render()
        return service + api

    def _status_count(self, status: str) -> int:
        with self._jobs_lock:
            return sum(1 for job in self._jobs.values()
                       if job.status == status)

    def trace_spans(self, trace_id: str) -> list:
        """Spans recorded for one trace (empty when none exist yet)."""
        return read_spans(self.span_sink, trace_id=trace_id)


class _Handler(BaseHTTPRequestHandler):
    """Routes HTTP verbs/paths onto the owning :class:`ApiServer`."""

    protocol_version = "HTTP/1.1"
    #: GET routes: exact paths plus the two parameterized families.
    _GET_PREFIXES = ("/v1/jobs/", "/v1/traces/")

    @property
    def api(self) -> ApiServer:
        """The :class:`ApiServer` this handler serves."""
        return self.server.api  # type: ignore[attr-defined]

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        """Route the default stderr access log through the repro logger."""
        _LOG.debug("%s %s", self.address_string(), format % args)

    # -------------------------------------------------------------- #
    # Verb entry points
    # -------------------------------------------------------------- #
    def do_GET(self) -> None:  # noqa: N802
        """Dispatch GET: status, result, trace, metrics, health."""
        self._handle("GET")

    def do_POST(self) -> None:  # noqa: N802
        """Dispatch POST: scan and repair submission."""
        self._handle("POST")

    def do_PUT(self) -> None:  # noqa: N802
        """PUT is never valid here: 405 on known routes, 404 otherwise."""
        self._handle("PUT")

    def do_DELETE(self) -> None:  # noqa: N802
        """DELETE is never valid here: 405 on known routes, 404 otherwise."""
        self._handle("DELETE")

    # -------------------------------------------------------------- #
    # Routing
    # -------------------------------------------------------------- #
    def _handle(self, method: str) -> None:
        """Route one request, timing it into the HTTP metric families."""
        path = urlparse(self.path).path.rstrip("/") or "/"
        started = time.perf_counter()
        route, code = self._route(method, path)
        self.api.observe_http(method, route, code,
                              time.perf_counter() - started)

    def _route(self, method: str, path: str) -> Tuple[str, int]:
        """Dispatch to the endpoint; returns (route label, status code)."""
        if path == "/healthz":
            if method != "GET":
                return "/healthz", self._send_error(405, "use GET")
            return "/healthz", self._send_json(200, {"status": "ok"})
        if path == "/metrics":
            if method != "GET":
                return "/metrics", self._send_error(405, "use GET")
            return "/metrics", self._send_text(200, self.api.metrics_text())
        if path == "/v1/scans":
            if method != "POST":
                return "/v1/scans", self._send_error(405, "use POST")
            return "/v1/scans", self._post_scan()
        if path == "/v1/repairs":
            if method != "POST":
                return "/v1/repairs", self._send_error(405, "use POST")
            return "/v1/repairs", self._post_repair()
        if path.startswith("/v1/traces/"):
            trace_id = path[len("/v1/traces/"):]
            if method != "GET":
                return "/v1/traces/{trace_id}", self._send_error(405,
                                                                 "use GET")
            return "/v1/traces/{trace_id}", self._get_trace(trace_id)
        if path.startswith("/v1/jobs/"):
            tail = path[len("/v1/jobs/"):]
            if tail.endswith("/result"):
                route = "/v1/jobs/{id}/result"
                job_id = tail[:-len("/result")]
                if method != "GET":
                    return route, self._send_error(405, "use GET")
                return route, self._get_result(job_id)
            route = "/v1/jobs/{id}"
            if method != "GET":
                return route, self._send_error(405, "use GET")
            return route, self._get_job(tail)
        return path, self._send_error(404, f"no such route: {path}")

    # -------------------------------------------------------------- #
    # Endpoints
    # -------------------------------------------------------------- #
    def _post_scan(self) -> int:
        payload = self._read_json()
        if payload is None:
            return self._last_code
        try:
            request, strategy = _parse_scan_submit(payload)
        except _BadRequest as error:
            return self._send_error(400, str(error))
        job = self.api.submit(
            "scan", request, tenant=str(payload.get("tenant",
                                                    DEFAULT_TENANT)),
            priority=int(payload.get("priority", 0)), strategy=strategy)
        return self._send_json(202, job.status_dict())

    def _post_repair(self) -> int:
        payload = self._read_json()
        if payload is None:
            return self._last_code
        try:
            request = _parse_repair_submit(payload)
        except _BadRequest as error:
            return self._send_error(400, str(error))
        job = self.api.submit(
            "repair", request, tenant=str(payload.get("tenant",
                                                      DEFAULT_TENANT)),
            priority=int(payload.get("priority", 0)))
        return self._send_json(202, job.status_dict())

    def _get_job(self, job_id: str) -> int:
        job = self.api.job(job_id)
        if job is None:
            return self._send_error(404, f"unknown job '{job_id}'")
        return self._send_json(200, job.status_dict())

    def _get_result(self, job_id: str) -> int:
        job = self.api.job(job_id)
        if job is None:
            return self._send_error(404, f"unknown job '{job_id}'")
        if job.status == "failed":
            return self._send_json(200, job.status_dict())
        if job.status != "done" or job.result is None:
            return self._send_error(409, f"job '{job_id}' is {job.status}; "
                                         "poll /v1/jobs/<id> until done")
        return self._send_json(200, job.status_dict() | {"result": job.result})

    def _get_trace(self, trace_id: str) -> int:
        if not trace_id:
            return self._send_error(404, "no trace id given")
        spans = self.api.trace_spans(trace_id)
        if not spans:
            return self._send_error(404, f"no spans recorded for trace "
                                         f"'{trace_id}'")
        return self._send_json(200, {"trace_id": trace_id, "spans": spans})

    # -------------------------------------------------------------- #
    # Response plumbing
    # -------------------------------------------------------------- #
    _last_code = 0

    def _read_json(self) -> Optional[Dict[str, Any]]:
        """Read and parse the request body; answers 400 itself on failure."""
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            length = 0
        if length <= 0:
            self._last_code = self._send_error(400, "empty request body")
            return None
        raw = self.rfile.read(length)
        try:
            payload = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            self._last_code = self._send_error(400,
                                               f"invalid JSON body: {error}")
            return None
        if not isinstance(payload, dict):
            self._last_code = self._send_error(400,
                                               "request body must be a JSON "
                                               "object")
            return None
        return payload

    def _send_json(self, code: int, payload: Dict[str, Any]) -> int:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)
        return code

    def _send_text(self, code: int, text: str) -> int:
        body = text.encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", "text/plain; version=0.0.4")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)
        return code

    def _send_error(self, code: int, message: str) -> int:
        return self._send_json(code, {"error": message, "code": code})
