"""Content-addressed fingerprints for checkpoints and detector configs.

A model fingerprint is a SHA-256 over its state dict: every entry's name,
dtype, shape, and raw bytes, folded in sorted-key order.  Two models with
identical weights therefore fingerprint identically in any process on any
machine, while a single perturbed weight changes the digest — exactly the
property the result store needs to treat "scan this model again" as a cache
hit.  Checkpoint metadata (:data:`repro.nn.serialization.METADATA_KEY`) is
*not* part of the state dict and never affects the fingerprint.

Detector configuration is digested separately (:func:`digest_config`) so the
cache key distinguishes, say, a 40-iteration USB scan from a 500-iteration
one: a scan result is addressed by ``(fingerprint, detector, config_digest)``
via :func:`scan_key`.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Any, Dict

import numpy as np

from ..nn.layers import Module
from ..nn.serialization import load_state_dict

__all__ = [
    "fingerprint_state_dict",
    "fingerprint_model",
    "fingerprint_checkpoint",
    "digest_config",
    "scan_key",
]

#: Length of the (hex) detector-config digest kept in scan keys.  16 hex
#: chars = 64 bits, far beyond collision risk for the handful of configs a
#: deployment ever uses, and short enough to keep keys readable.
CONFIG_DIGEST_CHARS = 16


def fingerprint_state_dict(state: Dict[str, np.ndarray]) -> str:
    """SHA-256 hex digest of a state dict's names, dtypes, shapes, and bytes."""
    digest = hashlib.sha256()
    for key in sorted(state):
        array = np.ascontiguousarray(state[key])
        digest.update(key.encode("utf-8"))
        digest.update(str(array.dtype).encode("ascii"))
        digest.update(str(tuple(array.shape)).encode("ascii"))
        digest.update(array.tobytes())
    return digest.hexdigest()


def fingerprint_model(model: Module) -> str:
    """Fingerprint a live module via its ``state_dict()``."""
    return fingerprint_state_dict(model.state_dict())


def fingerprint_checkpoint(path: str) -> str:
    """Fingerprint a saved ``.npz`` checkpoint (metadata entry excluded)."""
    return fingerprint_state_dict(load_state_dict(path))


def _canonical(value: Any) -> Any:
    """Reduce configs to a deterministic JSON-able structure."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        fields = {f.name: _canonical(getattr(value, f.name))
                  for f in dataclasses.fields(value)}
        return {"__type__": type(value).__name__, **fields}
    if isinstance(value, dict):
        return {str(k): _canonical(v) for k, v in sorted(value.items(),
                                                         key=lambda kv: str(kv[0]))}
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, np.ndarray):
        return [_canonical(v) for v in value.tolist()]
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return repr(value)


def digest_config(config: Any) -> str:
    """Short stable digest of any (nested) dataclass / dict / scalar config."""
    canonical = json.dumps(_canonical(config), sort_keys=True,
                           separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:CONFIG_DIGEST_CHARS]


def scan_key(fingerprint: str, detector: str, config_digest: str) -> str:
    """Result-store key for one (model, detector, config) scan."""
    return f"{fingerprint}:{detector.lower()}:{config_digest}"
