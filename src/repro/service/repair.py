"""Cacheable detect -> repair -> verify jobs for the scanning service.

``python -m repro repair <ckpt>`` turns the mitigation pipeline
(:mod:`repro.mitigation`) into service traffic with the same shape as
scans:

1. a :class:`RepairRequest` (a :class:`~repro.service.records.ScanRequest`
   plus the repair knobs) is *resolved* in the parent — checkpoint
   fingerprinted, scan config digested, repair config folded into its own
   digest — yielding a cache key distinct from every scan key;
2. hits are served from the shared result store as
   :class:`~repro.service.records.RepairRecord` entries;
3. misses run :func:`execute_repair` (module-level, picklable) serially or
   across the scheduler's worker pool via :func:`run_repairs` — the repair
   worker re-runs the detector to recover *full* reversed triggers (the
   store's compact scan summaries carry norms only), repairs, verifies, and
   writes the repaired checkpoint atomically
   (:func:`repro.service.locks.atomic_write`), so a crash mid-save never
   leaves a torn ``.npz`` behind;
4. fresh records land in the store, making the next identical request a
   hit.

The repair worker replays the exact RNG sequence of the scan worker
(:func:`~repro.service.scheduler.execute_resolved`), so its internal
detection pass reproduces the scan verdict for the same request budgets.
"""

from __future__ import annotations

import dataclasses
import io
import os
import time
from dataclasses import (dataclass, field as dataclass_field,
                         replace as dataclass_replace)
from datetime import datetime, timezone
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from ..attacks.base import SCENARIO_ALL_TO_ONE, scan_pairs_for
from ..data import DATASET_SPECS, load_dataset
from ..data.dataset import Dataset
from ..nn.layers import Module
from ..nn.serialization import METADATA_KEY, load_checkpoint
from ..obs.metrics import PROFILER
from ..obs.trace import TRACER, new_trace_id, span as _span, write_spans
from ..utils.logging import get_logger
from .fingerprint import digest_config, fingerprint_model, scan_key
from .locks import atomic_write
from .planning import CachePlanner
from .records import RepairRecord, ScanRequest
from .scheduler import (
    ResolvedScan,
    ScanScheduler,
    _build_scan_model,
    _clean_sample,
    build_request_detector,
    resolve_request,
)

__all__ = ["RepairRequest", "ResolvedRepair", "resolve_repair",
           "execute_repair", "run_repairs", "atomic_save_model"]

_LOG = get_logger("repro.service.repair")


def _utc_now() -> str:
    return datetime.now(timezone.utc).isoformat(timespec="seconds")


@dataclass(frozen=True)
class RepairRequest:
    """One repair job: a scan request plus the repair strategy and budgets.

    Every field participates in the repair cache key, so two repairs of the
    same weights with different strategies (or guardrails) never collide in
    the store.
    """

    #: The detect stage: which checkpoint, detector, and scan budgets.
    scan: ScanRequest
    #: Repair strategy (see :data:`repro.mitigation.STRATEGIES`).
    strategy: str = "both"
    #: Unlearning fine-tune epochs.
    unlearn_epochs: int = 3
    #: Unlearning learning rate.
    learning_rate: float = 1e-3
    #: Fraction of each unlearning batch stamped with a reversed trigger.
    stamp_fraction: float = 0.5
    #: Upper bound on the fraction of penultimate units pruned.
    prune_fraction: float = 0.1
    #: Clean-accuracy guardrail, in fraction points (0.03 = 3 points).
    max_accuracy_drop: float = 0.03
    #: Post-repair flip rate below which a cell counts as neutralized.
    success_flip_rate: float = 0.2
    #: Re-scan the repaired model with the same detector.
    rescan: bool = True
    #: Repaired checkpoint path (default: derived from the input path and
    #: the repair digest).
    output: Optional[str] = None

    def plan(self):
        """The :class:`repro.mitigation.RepairPlan` this request describes."""
        from ..mitigation import PruningConfig, RepairPlan, UnlearningConfig
        return RepairPlan(
            strategy=self.strategy,
            unlearning=UnlearningConfig(epochs=self.unlearn_epochs,
                                        learning_rate=self.learning_rate,
                                        stamp_fraction=self.stamp_fraction),
            pruning=PruningConfig(max_prune_fraction=self.prune_fraction),
            max_accuracy_drop=self.max_accuracy_drop,
            success_flip_rate=self.success_flip_rate,
            rescan=self.rescan)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe payload (nested scan request included)."""
        payload = dataclasses.asdict(self)
        payload["scan"] = self.scan.to_dict()
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "RepairRequest":
        """Rebuild a request from :meth:`to_dict` (unknown keys ignored)."""
        data = dict(payload)
        data["scan"] = ScanRequest.from_dict(dict(data["scan"]))
        known = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in known})


@dataclass(frozen=True)
class ResolvedRepair:
    """A repair request with its cache key and output path computed."""

    request: RepairRequest
    #: The resolved detect stage (fingerprint, scan config digest...).
    scan: ResolvedScan
    #: Repair-level config digest (scan digest + every repair knob).
    config_digest: str
    #: Store cache key: ``fingerprint:repair+<detector>:<digest>``.
    key: str
    #: Where the repaired checkpoint will be written.
    output: str
    #: Telemetry context stamped before dispatch (see
    #: :class:`~repro.service.scheduler.ResolvedScan`); never keyed.
    trace_id: str = ""
    parent_span_id: str = ""


def default_repair_output(checkpoint: str, digest: str) -> str:
    """Deterministic repaired-checkpoint path for one (checkpoint, config).

    Distinct repair configs write distinct files (the digest is in the
    name), so re-running with other knobs never clobbers an earlier repair.
    """
    stem, ext = os.path.splitext(os.fspath(checkpoint))
    return f"{stem}.repaired-{digest[:8]}{ext or '.npz'}"


def resolve_repair(request: RepairRequest,
                   checkpoint_cache: Optional[Dict[str, tuple]] = None
                   ) -> ResolvedRepair:
    """Compute a repair request's cache key (parent-side, no detector work).

    Args:
        request: The repair job.
        checkpoint_cache: Optional shared cache (see
            :func:`repro.service.scheduler.resolve_request`) so fleets
            fingerprint each checkpoint once.

    Returns:
        The :class:`ResolvedRepair` with key and output path filled in.
    """
    resolved_scan = resolve_request(request.scan,
                                    checkpoint_cache=checkpoint_cache)
    digest = digest_config({
        "scan_digest": resolved_scan.config_digest,
        "strategy": request.strategy,
        "unlearn_epochs": request.unlearn_epochs,
        "learning_rate": request.learning_rate,
        "stamp_fraction": request.stamp_fraction,
        "prune_fraction": request.prune_fraction,
        "max_accuracy_drop": request.max_accuracy_drop,
        "success_flip_rate": request.success_flip_rate,
        "rescan": request.rescan,
    })
    key = scan_key(resolved_scan.fingerprint,
                   f"repair+{request.scan.detector.lower()}", digest)
    output = request.output or default_repair_output(request.scan.checkpoint,
                                                     digest)
    return ResolvedRepair(request=request, scan=resolved_scan,
                          config_digest=digest, key=key, output=output)


def atomic_save_model(model: Module, path: str,
                      metadata: Optional[Dict[str, Any]] = None) -> None:
    """Write ``model.state_dict()`` as an ``.npz`` checkpoint atomically.

    The archive is serialized in memory and swapped in with
    :func:`repro.service.locks.atomic_write`, so concurrent readers (and
    the watch daemon's settle detection) never observe a half-written
    checkpoint.
    """
    state = model.state_dict()
    if METADATA_KEY in state:
        raise ValueError(f"'{METADATA_KEY}' is reserved for metadata.")
    arrays = dict(state)
    if metadata is not None:
        import json
        arrays[METADATA_KEY] = np.array(json.dumps(metadata, sort_keys=True))
    buffer = io.BytesIO()
    np.savez_compressed(buffer, **arrays)
    atomic_write(path, buffer.getvalue())


def _eval_sample(resolved: ResolvedScan) -> Dataset:
    """Evaluation split for the verify stage.

    Deterministic in the request seed and deliberately *larger* than the
    detector's clean sample (several samples per class), so the guardrail's
    accuracy delta is measured on a meaningful held-out pool rather than on
    the same handful of images the fine-tune just saw.
    """
    request = resolved.request
    spec = DATASET_SPECS[resolved.dataset]
    per_class = max(1, -(-request.clean_budget // spec.num_classes))
    _, test_set = load_dataset(
        resolved.dataset, samples_per_class=request.samples_per_class,
        test_per_class=max(3 * per_class, 10), seed=request.seed,
        image_size=resolved.image_size)
    return test_set


def execute_repair(resolved: ResolvedRepair) -> RepairRecord:
    """Run one already-resolved repair job: detect, repair, verify, persist.

    Worker-side half of a repair request (module-level so it pickles under
    every multiprocessing start method).  The detection pass replays the
    scan worker's RNG sequence, so its verdict matches a plain scan of the
    same request; the repaired checkpoint is written atomically and only
    when a repair was applied and survived the guardrail.

    Telemetry crosses the process boundary by value exactly as in
    :func:`~repro.service.scheduler.execute_resolved`: a forked worker
    adopts the trace stamped on ``resolved`` and its stage spans
    (``repair.scan`` / ``repair.apply`` / ``repair.save``) ride back on the
    record.
    """
    from ..mitigation import repair_model

    request = resolved.request
    scan_request = request.scan
    TRACER.check_fork()
    PROFILER.check_fork()
    adopted = bool(resolved.trace_id) and not TRACER.enabled
    if adopted:
        TRACER.enable()
        PROFILER.enable()
    profiling = PROFILER.enabled
    if profiling:
        PROFILER.reset()
    try:
        with TRACER.context(resolved.trace_id, resolved.parent_span_id):
            with _span("worker.repair", detector=scan_request.detector,
                       strategy=request.strategy):
                rng = np.random.default_rng(scan_request.seed)
                state, metadata = load_checkpoint(scan_request.checkpoint)
                model = _build_scan_model(resolved.scan, state)
                clean = _clean_sample(resolved.scan, rng)
                detector = build_request_detector(scan_request, clean, rng)
                classes = (list(scan_request.classes)
                           if scan_request.classes is not None else None)
                pairs = None
                if scan_request.scenario != SCENARIO_ALL_TO_ONE:
                    candidates = (classes if classes is not None
                                  else list(range(clean.num_classes)))
                    pairs = scan_pairs_for(scan_request.scenario, candidates,
                                           source_classes=scan_request.source_classes)
                start = time.perf_counter()
                with _span("repair.scan", detector=scan_request.detector):
                    detection = detector.detect(model, classes=classes,
                                                pairs=pairs)
                eval_data = _eval_sample(resolved.scan)
                with _span("repair.apply", strategy=request.strategy,
                           rescan=bool(request.rescan)):
                    report = repair_model(
                        model, detection, clean, plan=request.plan(),
                        detector=detector if request.rescan else None,
                        eval_data=eval_data, rng=rng)
                seconds = time.perf_counter() - start

                repaired_checkpoint: Optional[str] = None
                repaired_fingerprint: Optional[str] = None
                if report.repaired and not report.rolled_back:
                    repair_meta = dict(metadata)
                    repair_meta.update({
                        "repaired_from": scan_request.checkpoint,
                        "repair_strategy": request.strategy,
                        "repair_key": resolved.key,
                        "repair_detector": scan_request.detector.lower(),
                    })
                    with _span("repair.save", output=resolved.output):
                        atomic_save_model(model, resolved.output,
                                          metadata=repair_meta)
                    repaired_checkpoint = resolved.output
                    repaired_fingerprint = fingerprint_model(model)
                    _LOG.info("%s: repaired checkpoint written to %s",
                              scan_request.checkpoint, resolved.output)

        telemetry: Dict[str, Any] = {}
        if profiling:
            telemetry = dict(PROFILER.snapshot())
            if resolved.trace_id:
                telemetry["trace_id"] = resolved.trace_id
        record = _repair_record(resolved, detection, report, seconds,
                                repaired_checkpoint, repaired_fingerprint,
                                telemetry)
        if adopted:
            record.spans = TRACER.drain()
        return record
    finally:
        if adopted:
            TRACER.reset()
            PROFILER.disable()
            PROFILER.reset()


def _repair_record(resolved: ResolvedRepair, detection, report,
                   seconds: float, repaired_checkpoint: Optional[str],
                   repaired_fingerprint: Optional[str],
                   telemetry: Dict[str, Any]) -> RepairRecord:
    request = resolved.request
    scan_request = request.scan
    return RepairRecord(
        key=resolved.key,
        fingerprint=resolved.scan.fingerprint,
        config_digest=resolved.config_digest,
        checkpoint=scan_request.checkpoint,
        model=resolved.scan.model,
        dataset=resolved.scan.dataset,
        detector=scan_request.detector.lower(),
        strategy=request.strategy,
        scan_key=resolved.scan.key,
        was_backdoored=bool(detection.is_backdoored),
        repaired=bool(report.repaired),
        success=bool(report.success),
        accuracy_before=float(report.accuracy_before),
        accuracy_after=float(report.accuracy_after),
        repaired_checkpoint=repaired_checkpoint,
        repaired_fingerprint=repaired_fingerprint,
        report=report.to_dict(),
        seconds=seconds,
        created_at=_utc_now(),
        worker_pid=os.getpid(),
        telemetry=telemetry,
    )


def _served_repair_copy(record: RepairRecord,
                        item: ResolvedRepair) -> RepairRecord:
    """A cache-hit copy of ``record`` relabelled for the current request."""
    copy = RepairRecord.from_dict(record.to_dict())
    copy.cache_hit = True
    copy.checkpoint = item.request.scan.checkpoint
    copy.model = item.scan.model
    copy.dataset = item.scan.dataset
    return copy


def run_repairs(scheduler: ScanScheduler,
                requests: Sequence[RepairRequest]) -> List[RepairRecord]:
    """Repair a batch of checkpoints, store-cached and scheduler-dispatched.

    Mirrors :meth:`repro.service.ScanScheduler.scan`: every request is
    resolved in the parent, store hits (and in-batch duplicates) are served
    without worker dispatch, and the remaining misses fan out across the
    scheduler's pool (inline when ``workers <= 1`` — verdict-identical to
    the pool path).  Fresh records are appended to the scheduler's store.

    Args:
        scheduler: Supplies the store, the worker pool, and the metrics.
        requests: Repair jobs; records come back in request order.

    Returns:
        One :class:`~repro.service.records.RepairRecord` per request.
    """
    tracing = False
    if scheduler.telemetry:
        TRACER.check_fork()
        PROFILER.check_fork()
        TRACER.enable()
        PROFILER.enable()
        tracing = True

    # Like ``ScanScheduler.scan``, roots join an already-active trace (the
    # HTTP API's per-request span) instead of opening fresh ones.
    ambient_trace, ambient_parent = TRACER.current() if tracing else ("", "")
    checkpoint_cache: Dict[str, tuple] = {}
    resolved: List[ResolvedRepair] = []
    roots = []
    for request in requests:
        root = (TRACER.begin("repair.request",
                             trace_id=ambient_trace or new_trace_id(),
                             parent_id=ambient_parent,
                             detector=request.scan.detector,
                             checkpoint=request.scan.checkpoint,
                             strategy=request.strategy)
                if tracing else None)
        with TRACER.context_of(root):
            item = resolve_repair(request, checkpoint_cache=checkpoint_cache)
        if root is not None:
            item = dataclass_replace(item, trace_id=root.trace_id,
                                     parent_span_id=root.span_id)
        roots.append(root)
        resolved.append(item)
    del checkpoint_cache

    planner = CachePlanner(scheduler.store, scheduler.metrics,
                           record_type=RepairRecord)
    results, pending = planner.plan(resolved, roots, _served_repair_copy)

    if pending:
        _LOG.info("Repairing %d/%d request(s) (%d served from cache) via "
                  "the %s backend.", len(pending), len(resolved),
                  sum(r is not None for r in results),
                  scheduler.backend.name)
        fresh = scheduler.run_jobs(execute_repair,
                                   [item for _, item in pending])
        for (index, _), record in zip(pending, fresh):
            worker_spans = record.pop_spans()
            if tracing:
                TRACER.add(worker_spans)
            results[index] = record
            scheduler.metrics.record_latency(float(record.seconds))
            if scheduler.store is not None:
                scheduler.store.add(record)

    by_key = {record.key: record for record in results if record is not None}
    for index, item in enumerate(resolved):
        if results[index] is None:
            results[index] = _served_repair_copy(by_key[item.key], item)
    if tracing:
        for root in roots:
            TRACER.finish(root)
        spans = TRACER.drain()
        if scheduler.span_sink:
            write_spans(scheduler.span_sink, spans)
    return [record for record in results if record is not None]
