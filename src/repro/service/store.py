"""Result stores: single-file JSONL and the sharded multi-writer variant.

Two implementations share one interface (``lookup`` / ``add`` / ``records`` /
``compact`` / ``merge``):

* :class:`ResultStore` — the original append-only single-file JSONL store.
  One line per :class:`~repro.service.records.ScanRecord`, keyed by
  ``(fingerprint, detector, config_digest)`` (the record's ``key``).  The
  file is the source of truth: the store replays it on open, so it survives
  restarts and ships around as one file.  **Single-writer**: only one
  process may append at a time.

* :class:`ShardedResultStore` — a directory of shard files
  (``shard-<prefix>.jsonl``), sharded by the leading hex characters of the
  record's fingerprint.  Every append takes the shard's advisory
  :class:`~repro.service.locks.FileLock` and issues one ``O_APPEND`` write
  of the full line, so **concurrent writers** (multiple schedulers, multiple
  ``python -m repro`` invocations, the watch daemon) share one store without
  lost or torn records.  Readers pick up other writers' appends lazily: a
  ``lookup`` miss re-replays the one shard that could hold the key, keyed on
  its (mtime, size) signature.

:func:`open_store` picks the right implementation from the path (existing
directory or extension-less path -> sharded; ``*.jsonl`` file -> legacy), so
callers and the CLI accept either layout with one flag.

Both stores tolerate a torn final line (a writer killed mid-append under the
legacy layout, or a truncated copy): unreadable lines are skipped with a
warning on replay.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Iterable, Iterator, List, Optional, Tuple, Union

from ..utils.logging import get_logger
from .locks import FileLock, atomic_write
from .records import RepairRecord, ScanRecord, record_from_dict

__all__ = ["ResultStore", "ShardedResultStore", "open_store",
           "stream_records", "STATS_NAME", "SPANS_NAME", "METRICS_NAME",
           "sidecar_path"]

#: Record types a store line may decode to (see ``records.record_from_dict``).
StoreRecord = Union[ScanRecord, RepairRecord]

_LOG = get_logger("repro.service.store")

#: Manifest file written at the root of a sharded store directory.
MANIFEST_NAME = "store.json"
#: File name of the daemon's stats endpoint inside a sharded store directory
#: (next to a legacy file it becomes ``<store>.stats.json``).
STATS_NAME = "stats.json"
#: File name of the trace-span JSONL sidecar (same placement rules).
SPANS_NAME = "spans.jsonl"
#: File name of the Prometheus metrics sidecar (same placement rules).
METRICS_NAME = "metrics.prom"
#: Current sharded-store format version (checked on open).
STORE_FORMAT = 1
#: Default number of leading fingerprint hex chars used as the shard id
#: (2 -> up to 256 shards, plenty for a uniformly distributed SHA-256 prefix).
DEFAULT_SHARD_WIDTH = 2


def sidecar_path(store_path: str, name: str) -> str:
    """Path of a store sidecar file (stats/spans/metrics) for any layout.

    Sharded stores (directories, and extension-less paths that will become
    directories) keep sidecars *inside* the store; a legacy single-file
    store gets ``<store>.<name>`` siblings.

    Args:
        store_path: The store path as given to :func:`open_store`.
        name: Sidecar file name (:data:`STATS_NAME`, :data:`SPANS_NAME`,
            :data:`METRICS_NAME`).
    """
    text = os.fspath(store_path)
    if os.path.isfile(text):
        return text + "." + name
    if (os.path.isdir(text) or text.endswith(os.sep)
            or os.path.splitext(text)[1] == ""):
        return os.path.join(text.rstrip(os.sep), name)
    return text + "." + name


def _iter_jsonl_records(path: str) -> Iterator[StoreRecord]:
    """Yield the parseable record lines of a JSONL file.

    Lines decode through :func:`repro.service.records.record_from_dict`, so
    one file may mix :class:`ScanRecord` and :class:`RepairRecord` lines.
    Unreadable lines (torn final append, foreign garbage) are counted and
    skipped with one warning per file — a store replay never fails on them.
    """
    skipped = 0
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                yield record_from_dict(json.loads(line))
            except (json.JSONDecodeError, KeyError, TypeError, ValueError):
                skipped += 1
    if skipped:
        _LOG.warning("%s: skipped %d unreadable line(s).", path, skipped)


def _encode(record: StoreRecord) -> bytes:
    """One canonical JSONL line (newline-terminated bytes) for ``record``.

    Transient trace spans are stripped here: they belong in the span sink
    (``spans.jsonl``), not in every store line, and stripping at the encode
    choke point keeps them out even when a caller forgot ``pop_spans()``.
    """
    payload = record.to_dict()
    payload.pop("spans", None)
    return (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")


def _append_line(path: str, data: bytes) -> None:
    """Append ``data`` to ``path`` with a single ``O_APPEND`` write.

    ``O_APPEND`` makes the offset+write pair atomic in the kernel, so
    concurrent appenders on a local filesystem never interleave within a
    line; the sharded store additionally serializes writers with a per-shard
    lock, making this belt-and-braces.
    """
    fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
    try:
        os.write(fd, data)
    finally:
        os.close(fd)


class ResultStore:
    """Persistent scan-result cache: one JSONL file, dict index in memory.

    Args:
        path: JSONL file path (created on first ``add``).

    Single-writer by design — the scheduler's parent process appends, worker
    processes only return records over the pool.  For concurrent writers use
    :class:`ShardedResultStore` (or :func:`open_store` with a directory).
    """

    def __init__(self, path: str) -> None:
        self.path = os.fspath(path)
        self._index: Dict[str, StoreRecord] = {}
        self._replay()

    # ------------------------------------------------------------------ #
    # Loading
    # ------------------------------------------------------------------ #
    def _replay(self) -> None:
        """Rebuild the in-memory index from the log (latest record per key wins)."""
        if not os.path.exists(self.path):
            return
        for record in _iter_jsonl_records(self.path):
            self._index[record.key] = record

    # ------------------------------------------------------------------ #
    # Reads
    # ------------------------------------------------------------------ #
    def lookup(self, key: str) -> Optional[StoreRecord]:
        """Latest record stored under ``key``, or ``None``."""
        return self._index.get(key)

    def __contains__(self, key: str) -> bool:
        """True when ``key`` has a stored record."""
        return key in self._index

    def __len__(self) -> int:
        """Number of distinct keys in the store."""
        return len(self._index)

    def records(self) -> List[StoreRecord]:
        """All indexed records (one per key, latest wins), insertion-ordered."""
        return list(self._index.values())

    def scan_records(self) -> List[ScanRecord]:
        """Only the :class:`ScanRecord` entries of :meth:`records`."""
        return [r for r in self.records() if isinstance(r, ScanRecord)]

    def repair_records(self) -> List[RepairRecord]:
        """Only the :class:`RepairRecord` entries of :meth:`records`."""
        return [r for r in self.records() if isinstance(r, RepairRecord)]

    def __iter__(self) -> Iterator[StoreRecord]:
        """Iterate over :meth:`records`."""
        return iter(self.records())

    # ------------------------------------------------------------------ #
    # Writes
    # ------------------------------------------------------------------ #
    def add(self, record: StoreRecord) -> None:
        """Append ``record`` to the log and index it."""
        directory = os.path.dirname(os.path.abspath(self.path))
        if directory:
            os.makedirs(directory, exist_ok=True)
        _append_line(self.path, _encode(record))
        self._index[record.key] = record

    def add_all(self, records: Iterable[StoreRecord]) -> None:
        """Append every record in ``records`` (see :meth:`add`)."""
        for record in records:
            self.add(record)

    # ------------------------------------------------------------------ #
    # Maintenance
    # ------------------------------------------------------------------ #
    def compact(self) -> Dict[str, int]:
        """Rewrite the log keeping only the latest record per key.

        Returns:
            Counters: ``lines_before``, ``records_after``, ``dropped``.
        """
        lines_before = 0
        if os.path.exists(self.path):
            for record in _iter_jsonl_records(self.path):
                self._index[record.key] = record
                lines_before += 1
        survivors = self.records()
        if os.path.exists(self.path) or survivors:
            atomic_write(self.path,
                         b"".join(_encode(r) for r in survivors).decode("utf-8"))
        return {"lines_before": lines_before, "records_after": len(survivors),
                "dropped": lines_before - len(survivors)}

    def merge(self, other: Union[str, "ResultStore", "ShardedResultStore"]
              ) -> Dict[str, int]:
        """Fold a foreign store into this one, cache-key-aware.

        Records whose key already exists here are skipped (the existing
        verdict keeps winning cache lookups — for a given key both stores
        hold the same deterministic verdict, so first-write-wins preserves
        cache-hit semantics); unknown keys are appended.

        Args:
            other: A store instance or a path (:func:`open_store` is applied).

        Returns:
            Counters: ``merged``, ``skipped``.
        """
        source = open_store(other) if isinstance(other, (str, os.PathLike)) else other
        merged = skipped = 0
        for record in source.records():
            if self.lookup(record.key) is not None:
                skipped += 1
                continue
            self.add(record)
            merged += 1
        return {"merged": merged, "skipped": skipped}


class ShardedResultStore:
    """Multi-writer result store: one JSONL shard per fingerprint prefix.

    Args:
        path: Store directory (created on demand, along with a ``store.json``
            manifest recording the shard width).
        shard_width: Leading fingerprint hex chars per shard id; read back
            from the manifest when the store already exists.
        lock_timeout: Seconds an append/compaction waits for a shard lock
            before raising :class:`~repro.service.locks.LockTimeout`.

    Layout::

        <path>/store.json            # manifest: {"format": 1, "shard_width": 2}
        <path>/shard-<prefix>.jsonl  # records whose fingerprint starts <prefix>
        <path>/locks/<shard>.lock    # advisory per-shard writer locks
        <path>/stats.json            # daemon stats endpoint (optional)

    Appends take the shard's :class:`~repro.service.locks.FileLock` and issue
    one ``O_APPEND`` write, so any number of processes can write one store;
    reads re-replay a shard only when its (mtime, size) signature changed.
    """

    def __init__(self, path: str, shard_width: int = DEFAULT_SHARD_WIDTH,
                 lock_timeout: Optional[float] = 30.0) -> None:
        self.path = os.fspath(path)
        self.lock_timeout = lock_timeout
        self._index: Dict[str, StoreRecord] = {}
        #: shard file name -> (mtime_ns, size) signature at last replay.
        self._shard_state: Dict[str, Tuple[int, int]] = {}
        self.shard_width = self._load_or_init_manifest(int(shard_width))
        self.refresh()

    # ------------------------------------------------------------------ #
    # Layout helpers
    # ------------------------------------------------------------------ #
    def _load_or_init_manifest(self, shard_width: int) -> int:
        """Read the manifest (creating it for a fresh store); return the width."""
        manifest_path = os.path.join(self.path, MANIFEST_NAME)
        if os.path.exists(manifest_path):
            with open(manifest_path, "r", encoding="utf-8") as handle:
                manifest = json.load(handle)
            fmt = int(manifest.get("format", 0))
            if fmt != STORE_FORMAT:
                raise ValueError(f"{self.path}: unsupported store format {fmt} "
                                 f"(this build reads format {STORE_FORMAT}).")
            return int(manifest["shard_width"])
        if shard_width < 1 or shard_width > 8:
            raise ValueError(f"shard_width must be in [1, 8], got {shard_width}.")
        os.makedirs(self.path, exist_ok=True)
        with FileLock(os.path.join(self.path, "locks", "store.lock"),
                      timeout=self.lock_timeout):
            # Another writer may have raced us to the manifest.
            if os.path.exists(manifest_path):
                with open(manifest_path, "r", encoding="utf-8") as handle:
                    return int(json.load(handle)["shard_width"])
            atomic_write(manifest_path,
                         json.dumps({"format": STORE_FORMAT,
                                     "shard_width": shard_width},
                                    sort_keys=True) + "\n")
        return shard_width

    def shard_name(self, key: str) -> str:
        """Shard file name for a record ``key`` (fingerprint-prefix addressed)."""
        return f"shard-{key[:self.shard_width]}.jsonl"

    def _shard_path(self, name: str) -> str:
        return os.path.join(self.path, name)

    def _shard_lock(self, name: str) -> FileLock:
        return FileLock(os.path.join(self.path, "locks", f"{name}.lock"),
                        timeout=self.lock_timeout)

    def shard_names(self) -> List[str]:
        """Sorted names of the shard files currently on disk."""
        if not os.path.isdir(self.path):
            return []
        return sorted(entry for entry in os.listdir(self.path)
                      if entry.startswith("shard-") and entry.endswith(".jsonl"))

    @property
    def stats_path(self) -> str:
        """Path of the daemon stats endpoint inside this store."""
        return os.path.join(self.path, STATS_NAME)

    # ------------------------------------------------------------------ #
    # Loading / multi-writer visibility
    # ------------------------------------------------------------------ #
    @staticmethod
    def _signature(path: str) -> Optional[Tuple[int, int]]:
        try:
            stat = os.stat(path)
        except FileNotFoundError:
            return None
        return (stat.st_mtime_ns, stat.st_size)

    def _replay_shard(self, name: str) -> None:
        """(Re-)read one shard into the index; latest line per key wins."""
        path = self._shard_path(name)
        signature = self._signature(path)
        if signature is None or self._shard_state.get(name) == signature:
            return
        for record in _iter_jsonl_records(path):
            self._index[record.key] = record
        self._shard_state[name] = signature

    def refresh(self) -> None:
        """Pick up appends from other writers: re-replay every changed shard."""
        for name in self.shard_names():
            self._replay_shard(name)

    # ------------------------------------------------------------------ #
    # Reads
    # ------------------------------------------------------------------ #
    def lookup(self, key: str) -> Optional[StoreRecord]:
        """Latest record stored under ``key``, or ``None``.

        A miss re-checks the one shard that could hold the key, so records
        appended by concurrent writers become visible without a full reload.
        """
        record = self._index.get(key)
        if record is not None:
            return record
        self._replay_shard(self.shard_name(key))
        return self._index.get(key)

    def __contains__(self, key: str) -> bool:
        """True when ``key`` has a stored record (refreshing its shard)."""
        return self.lookup(key) is not None

    def __len__(self) -> int:
        """Number of distinct keys across all shards (after a refresh)."""
        self.refresh()
        return len(self._index)

    def records(self) -> List[StoreRecord]:
        """All records (one per key, latest wins) after a full refresh."""
        self.refresh()
        return list(self._index.values())

    def scan_records(self) -> List[ScanRecord]:
        """Only the :class:`ScanRecord` entries of :meth:`records`."""
        return [r for r in self.records() if isinstance(r, ScanRecord)]

    def repair_records(self) -> List[RepairRecord]:
        """Only the :class:`RepairRecord` entries of :meth:`records`."""
        return [r for r in self.records() if isinstance(r, RepairRecord)]

    def __iter__(self) -> Iterator[StoreRecord]:
        """Iterate over :meth:`records`."""
        return iter(self.records())

    # ------------------------------------------------------------------ #
    # Writes
    # ------------------------------------------------------------------ #
    def add(self, record: StoreRecord) -> None:
        """Append ``record`` to its shard (lock + single ``O_APPEND`` write).

        The shard's replay signature is deliberately *not* refreshed here:
        the post-append (mtime, size) may already include another writer's
        lines this index never replayed, and recording it would mask them
        forever.  Leaving the stale signature in place makes the next
        :meth:`refresh`/miss re-replay the shard, picking up both.
        """
        name = self.shard_name(record.key)
        path = self._shard_path(name)
        os.makedirs(self.path, exist_ok=True)
        with self._shard_lock(name):
            _append_line(path, _encode(record))
        self._index[record.key] = record

    def add_all(self, records: Iterable[StoreRecord]) -> None:
        """Append every record in ``records`` (see :meth:`add`)."""
        for record in records:
            self.add(record)

    # ------------------------------------------------------------------ #
    # Maintenance
    # ------------------------------------------------------------------ #
    def compact(self) -> Dict[str, int]:
        """Drop superseded records: rewrite each shard with one line per key.

        Every shard is rewritten atomically under its writer lock (concurrent
        appends either land before the rewrite and survive deduplication, or
        wait for the lock and land after), so compaction is safe while other
        writers are live.

        Returns:
            Counters summed over shards: ``lines_before``, ``records_after``,
            ``dropped``, ``shards``.
        """
        totals = {"lines_before": 0, "records_after": 0, "dropped": 0,
                  "shards": 0}
        for name in self.shard_names():
            path = self._shard_path(name)
            with self._shard_lock(name):
                latest: Dict[str, StoreRecord] = {}
                lines = 0
                for record in _iter_jsonl_records(path):
                    latest[record.key] = record
                    lines += 1
                atomic_write(path, b"".join(_encode(r) for r in latest.values()
                                            ).decode("utf-8"))
                signature = self._signature(path)
            self._index.update(latest)
            if signature is not None:
                self._shard_state[name] = signature
            totals["lines_before"] += lines
            totals["records_after"] += len(latest)
            totals["dropped"] += lines - len(latest)
            totals["shards"] += 1
        return totals

    def merge(self, other: Union[str, ResultStore, "ShardedResultStore"]
              ) -> Dict[str, int]:
        """Fold a foreign store (file or directory) in, cache-key-aware.

        Keys already present locally are skipped — a merge never replaces a
        verdict that lookups are already hitting; unknown keys are appended
        to their shards, immediately becoming cache hits here.

        Args:
            other: A store instance or a path (:func:`open_store` is applied).

        Returns:
            Counters: ``merged``, ``skipped``.
        """
        source = open_store(other) if isinstance(other, (str, os.PathLike)) else other
        merged = skipped = 0
        for record in source.records():
            if self.lookup(record.key) is not None:
                skipped += 1
                continue
            self.add(record)
            merged += 1
        return {"merged": merged, "skipped": skipped}


def open_store(path: Union[str, os.PathLike],
               **kwargs) -> Union[ResultStore, ShardedResultStore]:
    """Open the store at ``path``, picking the layout from the path itself.

    Dispatch rules, in order:

    1. an existing directory (or a path ending in the OS separator) opens as
       a :class:`ShardedResultStore`;
    2. an existing file opens as a legacy single-file :class:`ResultStore`;
    3. otherwise the extension decides: no extension -> a fresh sharded
       store directory, anything else (``scan_results.jsonl``) -> a fresh
       legacy file.

    Args:
        path: Store directory or JSONL file.
        **kwargs: Forwarded to the chosen store constructor
            (e.g. ``shard_width`` / ``lock_timeout`` for sharded stores).

    Returns:
        The opened store; both classes share the read/write interface.
    """
    text = os.fspath(path)
    if os.path.isdir(text) or text.endswith(os.sep):
        return ShardedResultStore(text.rstrip(os.sep), **kwargs)
    if os.path.isfile(text):
        return ResultStore(text)
    if os.path.splitext(text)[1] == "":
        return ShardedResultStore(text, **kwargs)
    return ResultStore(text)


def stream_records(path: Union[str, os.PathLike]) -> Iterator[StoreRecord]:
    """Stream a store's records shard by shard, without a full index.

    Yields the same records in the same order as opening the store and
    calling ``records()`` — one record per key, latest line wins — but the
    working set is bounded by the *largest shard* instead of the whole
    store: read-only consumers (``repro report``, ad-hoc scripts) never pay
    for the in-memory index the caching stores build on open.

    Per-shard deduplication is sufficient because a record's shard is
    addressed by its key's fingerprint prefix: a key never spans shards,
    and replaying shards in sorted name order reproduces the index's
    insertion order exactly.  A missing store yields nothing.

    Args:
        path: Store directory (sharded layout) or JSONL file (legacy).

    Yields:
        :class:`~repro.service.records.ScanRecord` /
        :class:`~repro.service.records.RepairRecord` instances.
    """
    text = os.fspath(path)
    if os.path.isdir(text) or text.endswith(os.sep):
        root = text.rstrip(os.sep)
        names = sorted(entry for entry in os.listdir(root)
                       if entry.startswith("shard-")
                       and entry.endswith(".jsonl"))
        for name in names:
            latest: Dict[str, StoreRecord] = {}
            for record in _iter_jsonl_records(os.path.join(root, name)):
                latest[record.key] = record
            yield from latest.values()
        return
    if not os.path.isfile(text):
        return
    latest = {}
    for record in _iter_jsonl_records(text):
        latest[record.key] = record
    yield from latest.values()
