"""Append-only JSONL result store with an in-memory index.

One line per :class:`~repro.service.records.ScanRecord`, keyed by
``(fingerprint, detector, config_digest)`` (the record's ``key``).  The file
is the source of truth: every :class:`ResultStore` replays it on open, so a
store survives process restarts and can be shipped around as a single file.
Appends go straight to disk (line-buffered, one ``write`` per record), which
keeps the store crash-tolerant — a torn final line is skipped on reload.

Only the scheduler's parent process writes; worker processes return records
over the pool and never touch the file, so no cross-process locking is
needed.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Iterator, List, Optional

from ..utils.logging import get_logger
from .records import ScanRecord

__all__ = ["ResultStore"]

_LOG = get_logger("repro.service.store")


class ResultStore:
    """Persistent scan-result cache: JSONL on disk, dict index in memory."""

    def __init__(self, path: str) -> None:
        self.path = os.fspath(path)
        self._index: Dict[str, ScanRecord] = {}
        self._replay()

    # ------------------------------------------------------------------ #
    # Loading
    # ------------------------------------------------------------------ #
    def _replay(self) -> None:
        if not os.path.exists(self.path):
            return
        skipped = 0
        with open(self.path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = ScanRecord.from_dict(json.loads(line))
                except (json.JSONDecodeError, KeyError, TypeError, ValueError):
                    skipped += 1
                    continue
                # Append-only log: the latest record for a key wins.
                self._index[record.key] = record
        if skipped:
            _LOG.warning("%s: skipped %d unreadable line(s).", self.path, skipped)

    # ------------------------------------------------------------------ #
    # Reads
    # ------------------------------------------------------------------ #
    def lookup(self, key: str) -> Optional[ScanRecord]:
        """Latest record stored under ``key``, or ``None``."""
        return self._index.get(key)

    def __contains__(self, key: str) -> bool:
        return key in self._index

    def __len__(self) -> int:
        return len(self._index)

    def records(self) -> List[ScanRecord]:
        """All indexed records (one per key, latest wins), insertion-ordered."""
        return list(self._index.values())

    def __iter__(self) -> Iterator[ScanRecord]:
        return iter(self.records())

    # ------------------------------------------------------------------ #
    # Writes
    # ------------------------------------------------------------------ #
    def add(self, record: ScanRecord) -> None:
        """Append ``record`` to the log and index it."""
        directory = os.path.dirname(os.path.abspath(self.path))
        if directory:
            os.makedirs(directory, exist_ok=True)
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(record.to_dict(), sort_keys=True) + "\n")
        self._index[record.key] = record

    def add_all(self, records: Iterator[ScanRecord]) -> None:
        for record in records:
            self.add(record)
