"""Lease-based distributed execution: a store-adjacent shared job queue.

``python -m repro worker <store>`` processes — N on one box, or N boxes
sharing a filesystem — coordinate through two append-only JSONL event
tables next to the result store (:func:`repro.service.store.sidecar_path`
with name ``fleet``):

* ``fleet/jobs.jsonl`` — job lifecycle events (``submit`` / ``done`` /
  ``error`` / ``failed``), results riding inline on ``done`` lines;
* ``fleet/leases.jsonl`` — ownership events (``acquire`` / ``renew`` /
  ``release`` / ``requeue``) and worker presence (``online`` /
  ``heartbeat`` / ``offline``).

Every mutation appends one line under a single advisory
:class:`~repro.service.locks.FileLock` (``fleet/locks/fleet.lock``) using
the store's ``O_APPEND`` single-write idiom, and state is a pure replay of
the two logs — there is no server process to crash and nothing to repair
after one.

**Lease-based ownership.**  A worker *acquires* a job by stamping a lease
with a deadline (``now + lease_seconds``) and renews it from a heartbeat
thread while the job runs.  A lease whose deadline passes — worker killed,
hung, or partitioned — is *requeued by any reader* (submitter poll, another
worker's acquire, a metrics snapshot) up to the job's retry budget; past
the budget the job fails with the shared
:class:`~repro.service.planning.JobTimeoutError` semantics.  Results and
errors are ownership-checked under the lock, so a worker that lost its
lease can never publish over the current owner (no double ownership), and
a submitted job always ends ``done`` or ``failed`` (no lost jobs) — the
invariants ``tests/test_fleet.py`` drives with hypothesis.

:class:`FleetBackend` adapts the queue to the
:class:`~repro.service.backends.ExecutionBackend` contract: payloads are
encoded per registered :class:`JobKind` (scan / repair / probe), results
decode back into records with their trace spans intact, so fleet scans
stitch into the submitter's trace exactly as pool workers do.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass, field as dataclass_field
from typing import Any, Callable, Dict, List, Optional
from uuid import uuid4

from ..utils.logging import get_logger
from .backends import ExecutionBackend
from .planning import JobTimeoutError, ServiceMetrics
from .records import ScanRequest, record_from_dict
from .repair import ResolvedRepair, execute_repair, resolve_repair
from .scheduler import ResolvedScan, execute_resolved
from .store import _append_line, sidecar_path
from .locks import FileLock

__all__ = ["FleetQueue", "FleetBackend", "FleetWorker", "run_worker",
           "LeaseLostError", "JobKind", "register_kind", "kind_for",
           "probe_job", "fleet_snapshot", "fleet_dir", "DEFAULT_TENANT",
           "DEFAULT_LEASE_SECONDS"]

_LOG = get_logger("repro.service.fleet")

#: Tenant label applied when a submitter does not name one.
DEFAULT_TENANT = "default"
#: Default lease duration: how long a worker may go silent before any
#: reader may requeue its job.
DEFAULT_LEASE_SECONDS = 30.0
#: Fleet table file names inside the fleet directory.
JOBS_NAME = "jobs.jsonl"
LEASES_NAME = "leases.jsonl"


class LeaseLostError(RuntimeError):
    """A worker acted on a job whose lease it no longer holds.

    Raised on ``renew`` / ``complete`` / ``error`` when the job was requeued
    (lease expired) or finished by another owner in the meantime.  The
    worker must discard its result — the queue's current owner is
    authoritative.
    """


def fleet_dir(store_path: str) -> str:
    """The fleet coordination directory for a store path (any layout)."""
    return sidecar_path(store_path, "fleet")


# ---------------------------------------------------------------------- #
# Job kinds: how payloads and results cross the process boundary
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class JobKind:
    """One executable job type the fleet understands.

    A kind binds a module-level function to JSON codecs for its payload and
    result, so a submitter and an independently-started worker agree on the
    wire format without sharing any Python state.
    """

    #: Wire name stamped on ``submit`` events.
    name: str
    #: Module-level function workers execute.
    fn: Callable[[Any], Any]
    #: Payload object -> JSON-safe dict.
    encode: Callable[[Any], Dict[str, Any]]
    #: JSON-safe dict -> payload object.
    decode: Callable[[Dict[str, Any]], Any]
    #: Result object -> JSON-safe value (rides on the ``done`` event).
    encode_result: Callable[[Any], Any]
    #: JSON-safe value -> result object.
    decode_result: Callable[[Any], Any]


_KINDS: Dict[str, JobKind] = {}


def register_kind(kind: JobKind) -> JobKind:
    """Register a :class:`JobKind` (tests add probe-like kinds this way)."""
    _KINDS[kind.name] = kind
    return kind


def kind_for(fn: Callable[[Any], Any]) -> JobKind:
    """The registered kind executing ``fn``.

    Raises:
        ValueError: ``fn`` has no registered fleet kind — only functions
            with JSON codecs can cross the fleet's wire format (the pool
            backend has no such restriction).
    """
    for kind in _KINDS.values():
        if kind.fn is fn:
            return kind
    raise ValueError(
        f"{getattr(fn, '__qualname__', fn)!r} has no registered fleet job "
        "kind; the fleet backend can only run functions with JSON payload "
        "codecs (use --backend inline|pool for arbitrary callables).")


def _encode_resolved_scan(item: ResolvedScan) -> Dict[str, Any]:
    """JSON payload for a resolved scan (transport fields included)."""
    return {
        "request": item.request.to_dict(),
        "model": item.model,
        "dataset": item.dataset,
        "image_size": item.image_size,
        "fingerprint": item.fingerprint,
        "config_digest": item.config_digest,
        "key": item.key,
        "model_kwargs": dict(item.model_kwargs),
        "trace_id": item.trace_id,
        "parent_span_id": item.parent_span_id,
    }


def _decode_resolved_scan(payload: Dict[str, Any]) -> ResolvedScan:
    """Rebuild a :class:`ResolvedScan` from its wire payload."""
    return ResolvedScan(
        request=ScanRequest.from_dict(dict(payload["request"])),
        model=payload["model"],
        dataset=payload["dataset"],
        image_size=int(payload["image_size"]),
        fingerprint=payload["fingerprint"],
        config_digest=payload["config_digest"],
        key=payload["key"],
        model_kwargs=dict(payload.get("model_kwargs") or {}),
        trace_id=payload.get("trace_id", ""),
        parent_span_id=payload.get("parent_span_id", ""))


def _encode_resolved_repair(item: ResolvedRepair) -> Dict[str, Any]:
    """JSON payload for a resolved repair job.

    Only the request and transport context cross the wire; the worker
    re-resolves digests and the output path from the request, which is
    deterministic, so submitter and worker always agree on the cache key.
    """
    return {
        "request": item.request.to_dict(),
        "output": item.output,
        "trace_id": item.trace_id,
        "parent_span_id": item.parent_span_id,
    }


def _decode_resolved_repair(payload: Dict[str, Any]) -> ResolvedRepair:
    """Rebuild a :class:`ResolvedRepair` by re-resolving its request."""
    from dataclasses import replace as dataclass_replace
    from .repair import RepairRequest
    request = RepairRequest.from_dict(dict(payload["request"]))
    resolved = resolve_repair(request)
    return dataclass_replace(
        resolved, output=payload.get("output") or resolved.output,
        trace_id=payload.get("trace_id", ""),
        parent_span_id=payload.get("parent_span_id", ""))


def probe_job(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Diagnostic fleet job: sleep, maybe fail, report the executing pid.

    The smoke harness and the kill-a-worker test use probes to exercise the
    lease machinery without paying for a model scan.  ``payload`` knobs:
    ``sleep`` (seconds), ``fail`` (error message to raise), ``value``
    (echoed back).
    """
    duration = float(payload.get("sleep", 0.0) or 0.0)
    if duration > 0:
        time.sleep(duration)
    if payload.get("fail"):
        raise RuntimeError(str(payload["fail"]))
    return {"value": payload.get("value"), "pid": os.getpid()}


register_kind(JobKind(
    name="scan", fn=execute_resolved,
    encode=_encode_resolved_scan, decode=_decode_resolved_scan,
    encode_result=lambda record: record.to_dict(),
    decode_result=lambda payload: record_from_dict(dict(payload))))
register_kind(JobKind(
    name="repair", fn=execute_repair,
    encode=_encode_resolved_repair, decode=_decode_resolved_repair,
    encode_result=lambda record: record.to_dict(),
    decode_result=lambda payload: record_from_dict(dict(payload))))
register_kind(JobKind(
    name="probe", fn=probe_job,
    encode=dict, decode=dict,
    encode_result=dict, decode_result=dict))


# ---------------------------------------------------------------------- #
# Replayed queue state
# ---------------------------------------------------------------------- #
@dataclass
class FleetJob:
    """Replayed state of one submitted job (event-log projection)."""

    job_id: str
    kind: str
    payload: Dict[str, Any]
    tenant: str
    priority: int
    retries: int
    sequence: int
    #: Executions started so far (one per ``acquire`` event).
    attempts: int = 0
    #: Current lease holder (``None`` when queued or terminal).
    owner: Optional[str] = None
    #: Lease expiry timestamp while leased.
    deadline: float = 0.0
    done: bool = False
    failed: bool = False
    #: Whether the terminal failure came from lease expiry (vs a job error).
    expired: bool = False
    result: Any = None
    error: str = ""
    #: Non-terminal attempt errors seen so far (diagnostics only).
    attempt_errors: List[str] = dataclass_field(default_factory=list)

    @property
    def status(self) -> str:
        """``queued`` / ``leased`` / ``done`` / ``failed``."""
        if self.done:
            return "done"
        if self.failed:
            return "failed"
        if self.owner is not None:
            return "leased"
        return "queued"


@dataclass
class FleetClaim:
    """What :meth:`FleetQueue.acquire` hands a worker: one leased job."""

    job_id: str
    kind: str
    payload: Dict[str, Any]
    attempts: int
    retries: int
    deadline: float


class FleetQueue:
    """The shared job/lease tables: event-sourced, single-lock, replayed.

    Every public method takes the fleet lock, replays any events appended
    since the last call (both tables grow append-only, so replay is
    incremental from cached byte offsets), reaps expired leases, performs
    its mutation as one or more appended events, and re-replays — in-memory
    state is therefore never updated except through the log, and every
    process sharing the directory converges on the same state.

    Instances are thread-safe: an in-process mutex fronts the file lock,
    because ``flock`` only excludes across open file descriptions — two
    threads sharing one instance (and therefore one descriptor) would
    otherwise race the replay offsets.

    Args:
        store_path: The result-store path the fleet coordinates next to
            (tables live in :func:`fleet_dir` of this path).
        lock_timeout: Seconds to wait for the fleet lock.
        clock: Time source (injectable for the lease state-machine tests;
            production uses ``time.time`` so deadlines are comparable
            across machines sharing a filesystem).
        reader_id: Label stamped on requeue/fail events this reader writes
            (defaults to ``<hostname>:<pid>``).
    """

    def __init__(self, store_path: str, lock_timeout: Optional[float] = 30.0,
                 clock: Callable[[], float] = time.time,
                 reader_id: Optional[str] = None) -> None:
        self.path = fleet_dir(store_path)
        self.clock = clock
        self.reader_id = reader_id or f"{os.uname().nodename}:{os.getpid()}"
        self._mutex = threading.RLock()
        self._lock = FileLock(os.path.join(self.path, "locks", "fleet.lock"),
                              timeout=lock_timeout)
        self._jobs_path = os.path.join(self.path, JOBS_NAME)
        self._leases_path = os.path.join(self.path, LEASES_NAME)
        self._offsets = {self._jobs_path: 0, self._leases_path: 0}
        self._jobs: Dict[str, FleetJob] = {}
        self._sequence = 0
        #: worker id -> (pid, liveness deadline, offline flag).
        self._workers: Dict[str, List[Any]] = {}
        self._leases_expired = 0
        self._leases_requeued = 0
        os.makedirs(os.path.join(self.path, "locks"), exist_ok=True)

    # ------------------------------------------------------------------ #
    # Event log plumbing
    # ------------------------------------------------------------------ #
    def _append(self, path: str, event: Dict[str, Any]) -> None:
        """Append one event line (the caller must hold the fleet lock)."""
        event = dict(event)
        event["ts"] = self.clock()
        _append_line(path, (json.dumps(event, sort_keys=True) + "\n"
                            ).encode("utf-8"))

    def _refresh(self) -> None:
        """Replay events appended since the last refresh (lock held)."""
        self._refresh_file(self._jobs_path, self._apply_job_event)
        self._refresh_file(self._leases_path, self._apply_lease_event)

    def _refresh_file(self, path: str,
                      apply: Callable[[Dict[str, Any]], None]) -> None:
        offset = self._offsets[path]
        if not os.path.exists(path):
            return
        with open(path, "r", encoding="utf-8") as handle:
            handle.seek(offset)
            chunk = handle.read()
        consumed = 0
        for line in chunk.splitlines(keepends=True):
            if not line.endswith("\n"):
                break  # incomplete tail; re-read next refresh
            consumed += len(line.encode("utf-8"))
            text = line.strip()
            if not text:
                continue
            try:
                event = json.loads(text)
            except json.JSONDecodeError:
                _LOG.warning("%s: skipped unreadable fleet event line.", path)
                continue
            apply(event)
        self._offsets[path] = offset + consumed

    def _apply_job_event(self, event: Dict[str, Any]) -> None:
        name = event.get("event")
        if name == "submit":
            job_id = event["job"]
            self._jobs[job_id] = FleetJob(
                job_id=job_id, kind=event.get("kind", ""),
                payload=event.get("payload") or {},
                tenant=event.get("tenant", DEFAULT_TENANT),
                priority=int(event.get("priority", 0)),
                retries=int(event.get("retries", 0)),
                sequence=self._sequence)
            self._sequence += 1
            return
        job = self._jobs.get(event.get("job", ""))
        if job is None:
            return
        if name == "done":
            job.done = True
            job.result = event.get("result")
            job.owner = None
        elif name == "error":
            job.attempt_errors.append(str(event.get("error", "")))
        elif name == "failed":
            job.failed = True
            job.error = str(event.get("error", ""))
            job.expired = bool(event.get("expired", False))
            if job.expired:
                self._leases_expired += 1
            job.owner = None

    def _apply_lease_event(self, event: Dict[str, Any]) -> None:
        name = event.get("event")
        if name in ("online", "heartbeat", "offline"):
            worker = event.get("worker", "")
            if name == "offline":
                if worker in self._workers:
                    self._workers[worker][2] = True
                return
            self._workers[worker] = [event.get("pid"),
                                     float(event.get("deadline", 0.0)), False]
            return
        job = self._jobs.get(event.get("job", ""))
        if job is None:
            return
        if name == "acquire":
            job.attempts += 1
            job.owner = event.get("worker")
            job.deadline = float(event.get("deadline", 0.0))
        elif name == "renew":
            job.deadline = float(event.get("deadline", 0.0))
        elif name == "requeue":
            job.owner = None
            self._leases_requeued += 1
            if event.get("reason") == "expired":
                self._leases_expired += 1
        elif name == "release":
            job.owner = None

    # ------------------------------------------------------------------ #
    # Lease reaping (any reader may requeue an expired lease)
    # ------------------------------------------------------------------ #
    def _reap(self) -> None:
        """Requeue or fail every job whose lease deadline passed (lock held)."""
        now = self.clock()
        for job in list(self._jobs.values()):
            if job.status != "leased" or job.deadline > now:
                continue
            if job.attempts >= job.retries + 1:
                _LOG.warning("fleet job %s: lease expired on final attempt "
                             "%d; failing.", job.job_id, job.attempts)
                self._append(self._jobs_path, {
                    "event": "failed", "job": job.job_id,
                    "by": self.reader_id, "expired": True,
                    "error": (f"lease expired after {job.attempts} "
                              f"attempt(s) of {job.retries + 1} "
                              f"(last worker: {job.owner})")})
            else:
                _LOG.warning("fleet job %s: lease held by %s expired; "
                             "requeueing (attempt %d/%d).", job.job_id,
                             job.owner, job.attempts, job.retries + 1)
                self._append(self._leases_path, {
                    "event": "requeue", "job": job.job_id,
                    "by": self.reader_id, "reason": "expired"})
        self._refresh()

    def _require_owner(self, job_id: str, worker: str) -> FleetJob:
        """The live job leased to ``worker``, or raise :class:`LeaseLostError`."""
        job = self._jobs.get(job_id)
        if job is None:
            raise LeaseLostError(f"{job_id}: unknown job.")
        if job.status != "leased" or job.owner != worker:
            raise LeaseLostError(
                f"{job_id}: lease no longer held by {worker} "
                f"(status={job.status}, owner={job.owner}).")
        return job

    # ------------------------------------------------------------------ #
    # Submitter API
    # ------------------------------------------------------------------ #
    def submit(self, kind: str, payload: Dict[str, Any],
               tenant: str = DEFAULT_TENANT, priority: int = 0,
               retries: int = 0) -> str:
        """Enqueue one job; returns its fleet job id.

        Args:
            kind: Registered :class:`JobKind` wire name.
            payload: JSON-safe job payload (already encoded).
            tenant: Queue-depth attribution label (the HTTP API stamps its
                per-job tenant here).
            priority: Lower runs first; FIFO within a priority.
            retries: Re-execution budget after failures/expiries — the same
                semantics as the inline and pool backends.
        """
        job_id = f"job-{uuid4().hex[:12]}"
        with self._mutex, self._lock:
            self._refresh()
            self._append(self._jobs_path, {
                "event": "submit", "job": job_id, "kind": kind,
                "payload": payload, "tenant": tenant,
                "priority": int(priority), "retries": int(retries)})
            self._refresh()
        return job_id

    def poll(self, job_ids: Optional[List[str]] = None) -> Dict[str, FleetJob]:
        """Current state of ``job_ids`` (or every job), reaping stale leases."""
        with self._mutex, self._lock:
            self._refresh()
            self._reap()
            if job_ids is None:
                return {job_id: job for job_id, job in self._jobs.items()}
            return {job_id: self._jobs[job_id] for job_id in job_ids
                    if job_id in self._jobs}

    # ------------------------------------------------------------------ #
    # Worker API
    # ------------------------------------------------------------------ #
    def announce(self, worker: str, pid: int, ttl: float,
                 online: bool = True) -> None:
        """Record worker presence (``online``/``offline`` + liveness TTL)."""
        with self._mutex, self._lock:
            self._refresh()
            if online:
                self._append(self._leases_path, {
                    "event": "online", "worker": worker, "pid": int(pid),
                    "deadline": self.clock() + float(ttl)})
            else:
                self._append(self._leases_path, {
                    "event": "offline", "worker": worker})
            self._refresh()

    def acquire(self, worker: str, pid: int, lease_seconds: float,
                worker_ttl: Optional[float] = None) -> Optional[FleetClaim]:
        """Lease the front queued job to ``worker`` (``None`` when idle).

        One locked round trip: heartbeat the worker, reap expired leases
        (possibly requeueing work this very call then claims), pick the
        lowest ``(priority, sequence)`` queued job, and stamp its lease.
        """
        with self._mutex, self._lock:
            self._refresh()
            self._append(self._leases_path, {
                "event": "heartbeat", "worker": worker, "pid": int(pid),
                "deadline": self.clock() + float(worker_ttl or
                                                 3 * lease_seconds)})
            self._refresh()
            self._reap()
            queued = [job for job in self._jobs.values()
                      if job.status == "queued"]
            if not queued:
                return None
            job = min(queued, key=lambda j: (j.priority, j.sequence))
            deadline = self.clock() + float(lease_seconds)
            self._append(self._leases_path, {
                "event": "acquire", "job": job.job_id, "worker": worker,
                "pid": int(pid), "deadline": deadline})
            self._refresh()
            return FleetClaim(job_id=job.job_id, kind=job.kind,
                              payload=job.payload, attempts=job.attempts,
                              retries=job.retries, deadline=job.deadline)

    def renew(self, job_id: str, worker: str, lease_seconds: float) -> float:
        """Extend a held lease; returns the new deadline.

        Raises:
            LeaseLostError: The lease expired and was requeued (or finished
                by another owner) — the worker should abandon the job.
        """
        with self._mutex, self._lock:
            self._refresh()
            self._reap()
            self._require_owner(job_id, worker)
            deadline = self.clock() + float(lease_seconds)
            self._append(self._leases_path, {
                "event": "renew", "job": job_id, "worker": worker,
                "deadline": deadline})
            self._refresh()
            return deadline

    def complete(self, job_id: str, worker: str, result: Any) -> None:
        """Publish a result, ownership-checked.

        Raises:
            LeaseLostError: ``worker`` no longer owns the job; the result
                is discarded so two owners can never both publish.
        """
        with self._mutex, self._lock:
            self._refresh()
            self._reap()
            self._require_owner(job_id, worker)
            self._append(self._jobs_path, {
                "event": "done", "job": job_id, "worker": worker,
                "result": result})
            self._refresh()

    def error(self, job_id: str, worker: str, message: str) -> None:
        """Record a failed attempt, releasing (or exhausting) the job.

        Within budget the job returns to the queue; on the final attempt it
        fails terminally with ``message``.

        Raises:
            LeaseLostError: ``worker`` no longer owns the job.
        """
        with self._mutex, self._lock:
            self._refresh()
            self._reap()
            job = self._require_owner(job_id, worker)
            if job.attempts >= job.retries + 1:
                self._append(self._jobs_path, {
                    "event": "failed", "job": job_id, "worker": worker,
                    "expired": False, "error": str(message)})
            else:
                self._append(self._jobs_path, {
                    "event": "error", "job": job_id, "worker": worker,
                    "error": str(message)})
                self._append(self._leases_path, {
                    "event": "release", "job": job_id, "worker": worker})
            self._refresh()

    # ------------------------------------------------------------------ #
    # Observability
    # ------------------------------------------------------------------ #
    def snapshot(self) -> Dict[str, Any]:
        """Fleet gauges/counters for ``/metrics`` and ``repro report``.

        Reaps first — a snapshot is "any reader" too, so a dead worker's
        leases are requeued even when only a dashboard is watching.
        """
        with self._mutex, self._lock:
            self._refresh()
            self._reap()
            now = self.clock()
            live = sum(1 for pid, deadline, offline in self._workers.values()
                       if not offline and deadline > now)
            by_status: Dict[str, int] = {"queued": 0, "leased": 0, "done": 0,
                                         "failed": 0}
            depth: Dict[str, int] = {}
            for job in self._jobs.values():
                by_status[job.status] += 1
                if job.status in ("queued", "leased"):
                    depth[job.tenant] = depth.get(job.tenant, 0) + 1
            return {
                "backend": "fleet",
                "workers_live": live,
                "workers_seen": len(self._workers),
                "leases_held": by_status["leased"],
                "leases_expired_total": self._leases_expired,
                "leases_requeued_total": self._leases_requeued,
                "jobs_queued": by_status["queued"],
                "jobs_done": by_status["done"],
                "jobs_failed": by_status["failed"],
                "queue_depth": dict(sorted(depth.items())),
            }


def fleet_snapshot(store_path: str) -> Optional[Dict[str, Any]]:
    """The fleet snapshot for a store, or ``None`` when no fleet ran.

    ``repro report``, ``repro metrics``, and ``GET /metrics`` call this to
    decide whether to render fleet families: a store that never hosted a
    fleet has no ``fleet/`` directory and gets none.
    """
    directory = fleet_dir(store_path)
    if not os.path.isdir(directory):
        return None
    return FleetQueue(store_path).snapshot()


# ---------------------------------------------------------------------- #
# Worker process
# ---------------------------------------------------------------------- #
class FleetWorker:
    """One fleet worker: pull, lease, heartbeat, execute, publish, repeat.

    Args:
        store_path: Store whose fleet tables to serve.
        worker_id: Stable identity on lease/presence events (default
            ``worker-<8 hex>``; pass an explicit id to survive restarts as
            "the same" worker in dashboards).
        lease_seconds: Lease duration stamped on acquire and each renewal.
        heartbeat_seconds: Renewal cadence (default ``lease_seconds / 3``,
            so two missed beats still keep the lease alive).
        poll_interval: Idle sleep between acquire attempts.
        max_jobs: Exit after this many executed jobs (``None`` = forever);
            the smoke harness uses ``1`` to force distinct worker pids.
        idle_timeout: Exit after this many seconds without work (``None`` =
            wait forever).
    """

    def __init__(self, store_path: str, worker_id: Optional[str] = None,
                 lease_seconds: float = DEFAULT_LEASE_SECONDS,
                 heartbeat_seconds: Optional[float] = None,
                 poll_interval: float = 0.2,
                 max_jobs: Optional[int] = None,
                 idle_timeout: Optional[float] = None) -> None:
        self.queue = FleetQueue(store_path)
        self.worker_id = worker_id or f"worker-{uuid4().hex[:8]}"
        self.lease_seconds = float(lease_seconds)
        self.heartbeat_seconds = float(heartbeat_seconds
                                       if heartbeat_seconds is not None
                                       else max(0.05, lease_seconds / 3.0))
        self.poll_interval = float(poll_interval)
        self.max_jobs = max_jobs
        self.idle_timeout = idle_timeout
        self.jobs_executed = 0

    def _renewal_loop(self, job_id: str, stop: threading.Event,
                      lost: threading.Event) -> None:
        """Heartbeat thread body: renew until stopped or the lease is lost."""
        while not stop.wait(self.heartbeat_seconds):
            try:
                self.queue.renew(job_id, self.worker_id, self.lease_seconds)
            except LeaseLostError:
                lost.set()
                return

    def _execute(self, claim: FleetClaim) -> None:
        """Run one claimed job under lease renewal and publish the outcome."""
        stop = threading.Event()
        lost = threading.Event()
        renewer = threading.Thread(
            target=self._renewal_loop, args=(claim.job_id, stop, lost),
            name=f"{self.worker_id}-renew", daemon=True)
        renewer.start()
        try:
            kind = _KINDS.get(claim.kind)
            if kind is None:
                raise ValueError(f"unknown fleet job kind '{claim.kind}' "
                                 "(worker build too old?)")
            result = kind.fn(kind.decode(claim.payload))
            encoded = kind.encode_result(result)
        except LeaseLostError:
            _LOG.warning("%s: lost lease on %s mid-run; discarding.",
                         self.worker_id, claim.job_id)
            return
        except Exception as error:  # repro-lint: disable=exception-hygiene
            # The worker loop is a keep-the-fleet-alive boundary: the error
            # is published to the queue (retry/fail decision happens there)
            # and the worker moves on to the next job.
            stop.set()
            renewer.join()
            _LOG.warning("%s: job %s attempt failed: %s", self.worker_id,
                         claim.job_id, error)
            try:
                self.queue.error(claim.job_id, self.worker_id,
                                 f"{type(error).__name__}: {error}")
            except LeaseLostError:
                _LOG.warning("%s: lost lease on %s before reporting its "
                             "error.", self.worker_id, claim.job_id)
            return
        finally:
            stop.set()
        renewer.join()
        if lost.is_set():
            _LOG.warning("%s: lease on %s expired mid-run; result discarded.",
                         self.worker_id, claim.job_id)
            return
        try:
            self.queue.complete(claim.job_id, self.worker_id, encoded)
        except LeaseLostError:
            _LOG.warning("%s: lost lease on %s at publish; result discarded.",
                         self.worker_id, claim.job_id)

    def run(self) -> int:
        """Serve the queue until ``max_jobs`` / ``idle_timeout``; returns jobs run."""
        self.queue.announce(self.worker_id, os.getpid(),
                            ttl=3 * self.heartbeat_seconds + self.lease_seconds)
        _LOG.info("%s: serving fleet at %s (lease %.1fs, heartbeat %.1fs).",
                  self.worker_id, self.queue.path, self.lease_seconds,
                  self.heartbeat_seconds)
        last_work = time.monotonic()
        try:
            while True:
                claim = self.queue.acquire(
                    self.worker_id, os.getpid(), self.lease_seconds,
                    worker_ttl=3 * self.heartbeat_seconds + self.lease_seconds)
                if claim is None:
                    if self.idle_timeout is not None and \
                            time.monotonic() - last_work >= self.idle_timeout:
                        break
                    time.sleep(self.poll_interval)
                    continue
                self._execute(claim)
                self.jobs_executed += 1
                last_work = time.monotonic()
                if self.max_jobs is not None and \
                        self.jobs_executed >= self.max_jobs:
                    break
        finally:
            self.queue.announce(self.worker_id, os.getpid(), ttl=0.0,
                                online=False)
        _LOG.info("%s: exiting after %d job(s).", self.worker_id,
                  self.jobs_executed)
        return self.jobs_executed


def run_worker(store_path: str, **options: Any) -> int:
    """Run one fleet worker to completion (the ``repro worker`` entry point).

    Args:
        store_path: Store whose fleet queue to serve.
        **options: Forwarded to :class:`FleetWorker`.

    Returns:
        Number of jobs the worker executed.
    """
    return FleetWorker(store_path, **options).run()


# ---------------------------------------------------------------------- #
# Backend adapter
# ---------------------------------------------------------------------- #
class FleetBackend(ExecutionBackend):
    """Run batches through the shared fleet queue (workers execute).

    The submitter never executes jobs itself: it encodes payloads, submits
    them, then polls — and polling makes it a lease reaper, so even with
    every worker dead the batch fails deterministically once retry budgets
    are spent instead of hanging on a silent lease.

    Args:
        store_path: Store whose fleet tables coordinate the work.
        lease_seconds: Lease duration workers stamp (advisory here; used
            for the no-worker warning cadence).
        poll_interval: Submitter poll sleep between queue checks.
        tenant: Tenant stamped on submitted jobs (the HTTP API overrides
            this per job for the per-tenant queue-depth gauge).
        lock_timeout: Fleet lock acquisition budget.
    """

    def __init__(self, store_path: str,
                 lease_seconds: float = DEFAULT_LEASE_SECONDS,
                 poll_interval: float = 0.1,
                 tenant: str = DEFAULT_TENANT,
                 lock_timeout: Optional[float] = 30.0) -> None:
        self.store_path = os.fspath(store_path)
        self.lease_seconds = float(lease_seconds)
        self.poll_interval = float(poll_interval)
        self.tenant = tenant
        self.queue = FleetQueue(store_path, lock_timeout=lock_timeout)
        self.name = "fleet"

    def run(self, fn: Callable[[Any], Any], payloads: Any,
            timeout: Optional[float] = None, retries: int = 0,
            metrics: Optional[ServiceMetrics] = None) -> List[Any]:
        """Submit the batch to the fleet and wait for every verdict.

        ``timeout`` (the pool backends' per-job wall clock) is not enforced
        here — lease expiry already bounds a silent worker, and a *running*
        fleet worker renews its lease for as long as the job genuinely
        takes.
        """
        del timeout  # lease expiry is the fleet's liveness bound
        items = list(payloads)
        if not items:
            return []
        metrics = metrics if metrics is not None else ServiceMetrics()
        kind = kind_for(fn)
        job_ids = [self.queue.submit(kind.name, kind.encode(payload),
                                     tenant=self.tenant, retries=int(retries))
                   for payload in items]
        _LOG.info("fleet: submitted %d %s job(s) to %s.", len(job_ids),
                  kind.name, self.queue.path)
        last_warn = time.monotonic()
        while True:
            state = self.queue.poll(job_ids)
            if all(state[job_id].status in ("done", "failed")
                   for job_id in job_ids):
                break
            if time.monotonic() - last_warn >= 10.0:
                snap = self.queue.snapshot()
                if snap["workers_live"] == 0 and snap["leases_held"] == 0:
                    _LOG.warning(
                        "fleet: %d job(s) queued at %s but no live workers — "
                        "start some with `python -m repro worker <store>`.",
                        snap["jobs_queued"], self.queue.path)
                last_warn = time.monotonic()
            time.sleep(self.poll_interval)
        results: List[Any] = []
        for job_id in job_ids:
            job = state[job_id]
            metrics.retries += max(0, job.attempts - 1)
            if job.failed:
                metrics.failures += 1
                if job.expired:
                    raise JobTimeoutError(f"fleet job {job_id}: {job.error}")
                raise RuntimeError(f"fleet job {job_id}: {job.error}")
            results.append(kind.decode_result(job.result))
        return results
