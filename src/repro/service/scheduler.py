"""Parallel scan scheduling over a process pool, with a cached fast path.

The :class:`ScanScheduler` takes batches of
:class:`~repro.service.records.ScanRequest` and returns one
:class:`~repro.service.records.ScanRecord` per request, in order:

1. every request is *resolved* in the parent — the checkpoint is read, its
   state dict fingerprinted, and the detector config digested into the cache
   key — so cache hits never reach a worker;
2. duplicate keys inside one batch collapse to a single computation;
3. the remaining misses run through a ``ProcessPoolExecutor`` (or inline
   when ``workers <= 1``, the serial fallback the test suite uses), each
   worker loading the checkpoint from disk and running the detector's
   batched ``detect()`` path;
4. fresh records are appended to the attached result store, making the next
   identical request a hit.

Worker entry points (:func:`execute_scan`, and whatever job function callers
hand to :meth:`ScanScheduler.run_jobs`) are module-level so they pickle under
every multiprocessing start method.

**Layering.**  This module owns *planning*: request resolution, cache keys,
store lookups, and batch bookkeeping.  Where the planned work actually runs
is an :class:`~repro.service.backends.ExecutionBackend` — serial
(``inline``), process pool (``pool``), or the lease-coordinated worker
fleet (``fleet``, :mod:`repro.service.fleet`) — selected per scheduler via
the ``backend`` argument (every CLI entry point exposes it as
``--backend``).  Queue/retry/timeout machinery lives in
:mod:`repro.service.planning`; :class:`JobQueue`, :class:`QueuedJob`,
:class:`JobTimeoutError`, :class:`ServiceMetrics`, and
:data:`LATENCY_WINDOW` are re-exported here for compatibility.

**Metrics.**  Every scheduler carries a :class:`ServiceMetrics` accumulator
(scans served, cache-hit ratio, p50/p95 scan latency, failures, retries)
whose :meth:`ServiceMetrics.snapshot` is what the daemon publishes to its
stats endpoint file and ``python -m repro report`` renders.
"""

from __future__ import annotations

import os
import time
from dataclasses import (dataclass, field as dataclass_field,
                         replace as dataclass_replace)
from datetime import datetime, timezone
from typing import (Any, Callable, Dict, List, Optional, Sequence,
                    Tuple, TypeVar, Union)

import numpy as np

from ..attacks.base import SCENARIO_ALL_TO_ONE, scan_pairs_for
from ..core.detection import detect_mega_fleet
from ..core.mega import CleanActivationCache
from ..core.trigger_optimizer import TriggerOptimizationConfig
from ..core.uap import TargetedUAPConfig
from ..core.usb import USBConfig, USBDetector
from ..data import DATASET_SPECS, load_dataset, stratified_sample
from ..data.dataset import Dataset
from ..defenses import (
    NeuralCleanseConfig,
    NeuralCleanseDetector,
    TaborConfig,
    TaborDetector,
)
from ..models import build_model
from ..nn.layers import Module
from ..nn.serialization import load_checkpoint, validate_state_dict
from ..obs.metrics import PROFILER
from ..obs.trace import (TRACER, new_trace_id, span as _span,
                         telemetry_enabled, write_spans)
from ..utils.logging import get_logger
from .backends import ExecutionBackend, InlineBackend, PoolBackend, create_backend
from .fingerprint import digest_config, fingerprint_state_dict, scan_key
from .planning import (CachePlanner, JobQueue, JobTimeoutError, LATENCY_WINDOW,
                       QueuedJob, ServiceMetrics)
from .records import ScanRecord, ScanRequest
from .store import ResultStore

__all__ = ["ResolvedScan", "ScanScheduler", "resolve_request", "execute_scan",
           "execute_resolved", "execute_mega_group", "build_request_detector",
           "JobQueue", "QueuedJob", "JobTimeoutError", "ServiceMetrics",
           "activation_cache_bytes"]

_LOG = get_logger("repro.service.scheduler")

_JobT = TypeVar("_JobT")
_ResultT = TypeVar("_ResultT")


def _utc_now() -> str:
    return datetime.now(timezone.utc).isoformat(timespec="seconds")


# ---------------------------------------------------------------------- #
# Request resolution (parent side: cheap, cache-key producing)
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class ResolvedScan:
    """A request with metadata applied and its cache key computed."""

    request: ScanRequest
    model: str
    dataset: str
    image_size: int
    fingerprint: str
    config_digest: str
    key: str
    #: Extra ``build_model`` kwargs from the checkpoint metadata (fleet
    #: checkpoints record their ``ExperimentScale.model_kwargs`` here so
    #: non-default architectures rebuild correctly).
    model_kwargs: Dict[str, object] = dataclass_field(default_factory=dict)
    #: Telemetry context stamped by the scheduler before dispatch: a
    #: non-empty ``trace_id`` tells the executing process to record spans
    #: under this trace, parented on the scheduler's root span.  These are
    #: transport fields only — they never enter the cache-key digest.
    trace_id: str = ""
    parent_span_id: str = ""


def _detector_config(request: ScanRequest):
    """The concrete detector config a request resolves to (digest input)."""
    kind = request.detector.lower()
    if kind == "usb":
        return USBConfig(
            uap=TargetedUAPConfig(max_passes=request.uap_passes),
            optimization=TriggerOptimizationConfig(
                iterations=request.iterations, ssim_weight=1.0,
                mask_l1_weight=0.01),
            anomaly_threshold=request.anomaly_threshold)
    if kind == "nc":
        return NeuralCleanseConfig(
            optimization=TriggerOptimizationConfig(
                iterations=request.iterations, ssim_weight=0.0,
                mask_l1_weight=0.01),
            anomaly_threshold=request.anomaly_threshold)
    if kind == "tabor":
        return TaborConfig(
            optimization=TriggerOptimizationConfig(
                iterations=request.iterations, ssim_weight=0.0,
                mask_l1_weight=0.01, mask_tv_weight=0.002,
                outside_pattern_weight=0.002),
            anomaly_threshold=request.anomaly_threshold)
    raise ValueError(f"Unknown detector '{request.detector}'.")


def build_request_detector(request: ScanRequest, clean_data: Dataset,
                           rng: np.random.Generator):
    """Instantiate the detector a request asks for."""
    kind = request.detector.lower()
    config = _detector_config(request)
    if kind == "usb":
        return USBDetector(clean_data, config, rng=rng)
    if kind == "nc":
        return NeuralCleanseDetector(clean_data, config, rng=rng)
    return TaborDetector(clean_data, config, rng=rng)


def resolve_request(request: ScanRequest,
                    checkpoint_cache: Optional[Dict[str, tuple]] = None
                    ) -> ResolvedScan:
    """Fill in metadata defaults and compute the request's cache key.

    ``checkpoint_cache`` (path -> (state, metadata, fingerprint)) lets batch
    callers resolve many requests against the same file with one read and
    one SHA-256 — a grid scans each checkpoint once per detector, and the
    weights do not change between those requests.
    """
    cached = checkpoint_cache.get(request.checkpoint) if checkpoint_cache else None
    if cached is not None:
        state, metadata, fingerprint = cached
    else:
        state, metadata = load_checkpoint(request.checkpoint)
        with _span("scan.fingerprint", checkpoint=request.checkpoint):
            fingerprint = fingerprint_state_dict(state)
        if checkpoint_cache is not None:
            checkpoint_cache[request.checkpoint] = (state, metadata, fingerprint)
    model = request.model or metadata.get("model")
    dataset = request.dataset or metadata.get("dataset")
    if model is None or dataset is None:
        raise ValueError(
            f"{request.checkpoint}: checkpoint metadata does not name a "
            "model/dataset — pass --model and --dataset (or ScanRequest.model/"
            ".dataset) explicitly.")
    if dataset not in DATASET_SPECS:
        raise KeyError(f"Unknown dataset '{dataset}'. "
                       f"Available: {sorted(DATASET_SPECS)}")
    spec = DATASET_SPECS[dataset]
    image_size = int(request.image_size or metadata.get("image_size")
                     or spec.image_size)
    # The digest covers everything besides the weights that can change the
    # verdict: detector config, clean-data provenance, the class subset, and
    # the scenario axis — cached verdicts must never collide across
    # scenarios (an all-to-one scan and a source-conditional pair sweep of
    # the same weights are different results).
    digest_payload = {
        "detector": request.detector.lower(),
        "config": _detector_config(request),
        "dataset": dataset,
        "image_size": image_size,
        "clean_budget": request.clean_budget,
        "samples_per_class": request.samples_per_class,
        "classes": list(request.classes) if request.classes is not None else None,
        "seed": request.seed,
        "scenario": request.scenario,
        "source_classes": (list(request.source_classes)
                           if request.source_classes is not None else None),
    }
    # The default engine predates the knob; only deviations enter the digest
    # so verdicts cached before ``inversion_mode`` existed stay addressable.
    if request.inversion_mode != "batched":
        digest_payload["inversion_mode"] = request.inversion_mode
    digest = digest_config(digest_payload)
    return ResolvedScan(
        request=request, model=model, dataset=dataset, image_size=image_size,
        fingerprint=fingerprint, config_digest=digest,
        key=scan_key(fingerprint, request.detector, digest),
        model_kwargs=dict(metadata.get("model_kwargs") or {}))


# ---------------------------------------------------------------------- #
# Worker entry point
# ---------------------------------------------------------------------- #
def _build_scan_model(resolved: ResolvedScan, state) -> Module:
    spec = DATASET_SPECS[resolved.dataset]
    model = build_model(resolved.model, num_classes=spec.num_classes,
                        in_channels=spec.channels,
                        image_size=resolved.image_size,
                        rng=np.random.default_rng(0),
                        **resolved.model_kwargs)
    validate_state_dict(model, state, source=resolved.request.checkpoint)
    model.load_state_dict(state)
    return model


def _clean_sample(resolved: ResolvedScan, rng: np.random.Generator) -> Dataset:
    request = resolved.request
    spec = DATASET_SPECS[resolved.dataset]
    per_class = max(1, -(-request.clean_budget // spec.num_classes))
    _, test_set = load_dataset(
        resolved.dataset, samples_per_class=request.samples_per_class,
        test_per_class=max(per_class, 2), seed=request.seed,
        image_size=resolved.image_size)
    return stratified_sample(test_set, request.clean_budget, rng)


def _clean_key(resolved: ResolvedScan) -> str:
    request = resolved.request
    return (f"{resolved.dataset}:{resolved.image_size}:"
            f"s{request.seed}:b{request.clean_budget}")


def _scan_telemetry(resolved: ResolvedScan, detection,
                    detector) -> Dict[str, Any]:
    """The per-record ``telemetry`` block from the live profiler state."""
    telemetry: Dict[str, Any] = dict(PROFILER.snapshot())
    if resolved.trace_id:
        telemetry["trace_id"] = resolved.trace_id
    telemetry["iterations"] = sum(int(t.iterations)
                                  for t in detection.triggers)
    pool_stats = getattr(detector, "last_mega_stats", None)
    if pool_stats:
        telemetry["pool"] = dict(pool_stats)
    return telemetry


def execute_resolved(resolved: ResolvedScan) -> ScanRecord:
    """Run one already-resolved scan: the worker-side half of a request.

    Runs inside pool workers (and inline for the serial fallback); must stay
    module-level and depend only on the picklable ``resolved`` payload.  The
    checkpoint is loaded exactly once here — the fingerprint and cache key
    were computed during resolution, so no re-hashing happens in the worker.

    Telemetry crosses the process boundary by value: a forked worker first
    resets the tracer/profiler state inherited from the parent
    (:meth:`~repro.obs.trace.Tracer.check_fork`), then *adopts* the trace
    stamped on ``resolved`` — its spans and per-phase profile ride back on
    the returned record (``record.spans`` / ``record.telemetry``) where the
    parent stitches them into the request's tree.  When the tracer is
    already live (the serial in-parent fallback), spans go straight to the
    parent buffer and nothing rides on the record.
    """
    request = resolved.request
    TRACER.check_fork()
    PROFILER.check_fork()
    adopted = bool(resolved.trace_id) and not TRACER.enabled
    if adopted:
        TRACER.enable()
        PROFILER.enable()
    profiling = PROFILER.enabled
    if profiling:
        PROFILER.reset()
    try:
        with TRACER.context(resolved.trace_id, resolved.parent_span_id):
            with _span("worker.scan", detector=request.detector,
                       checkpoint=request.checkpoint):
                rng = np.random.default_rng(request.seed)
                state, _ = load_checkpoint(request.checkpoint)
                model = _build_scan_model(resolved, state)
                clean = _clean_sample(resolved, rng)
                detector = build_request_detector(request, clean, rng)
                if request.inversion_mode == "mega":
                    # Daemon children and pool workers run mega scans in a
                    # fresh process; give them a real activation cache so
                    # their telemetry reports actual hit/miss traffic.
                    detector.activation_cache = CleanActivationCache(
                        max_bytes=activation_cache_bytes())
                    detector.model_key = resolved.fingerprint
                    detector.clean_key = _clean_key(resolved)
                classes = (list(request.classes)
                           if request.classes is not None else None)
                pairs = None
                if request.scenario != SCENARIO_ALL_TO_ONE:
                    candidate_classes = (classes if classes is not None
                                         else list(range(clean.num_classes)))
                    pairs = scan_pairs_for(request.scenario, candidate_classes,
                                           source_classes=request.source_classes)
                start = time.perf_counter()
                detection = detector.detect(model, classes=classes, pairs=pairs,
                                            mode=request.inversion_mode)
                detection.seconds_total = time.perf_counter() - start
        telemetry = (_scan_telemetry(resolved, detection, detector)
                     if profiling else {})
        record = ScanRecord.from_detection(
            key=resolved.key, fingerprint=resolved.fingerprint,
            config_digest=resolved.config_digest, checkpoint=request.checkpoint,
            model=resolved.model, dataset=resolved.dataset, detection=detection,
            created_at=_utc_now(), worker_pid=os.getpid(), telemetry=telemetry)
        if adopted:
            record.spans = TRACER.drain()
        return record
    finally:
        if adopted:
            TRACER.reset()
            PROFILER.disable()
            PROFILER.reset()


def execute_scan(request: ScanRequest) -> ScanRecord:
    """One-shot convenience entry: resolve ``request`` and scan it."""
    return execute_resolved(resolve_request(request))


def activation_cache_bytes() -> int:
    """Clean-activation cache budget: ``REPRO_ACTIVATION_CACHE_MB`` (MB).

    Defaults to 256 MB; see ``docs/ops.md`` for sizing guidance.
    """
    try:
        megabytes = int(os.environ.get("REPRO_ACTIVATION_CACHE_MB", "256"))
    except ValueError:
        megabytes = 256
    return max(1, megabytes) * 1024 * 1024


def _mega_record(resolved: ResolvedScan, detection) -> ScanRecord:
    return ScanRecord.from_detection(
        key=resolved.key, fingerprint=resolved.fingerprint,
        config_digest=resolved.config_digest,
        checkpoint=resolved.request.checkpoint, model=resolved.model,
        dataset=resolved.dataset, detection=detection,
        created_at=_utc_now(), worker_pid=os.getpid())


def execute_mega_group(group: Sequence[ResolvedScan],
                       cache: Optional[CleanActivationCache] = None
                       ) -> List[ScanRecord]:
    """Run a batch of ``inversion_mode="mega"`` scans as one mega-batch.

    Every scan in ``group`` — classic (all-to-one) *and* pair-mode — folds
    its (model × cell) grid into a single
    :func:`~repro.core.detection.detect_mega_fleet` pool: a 5-checkpoint
    grid becomes one cross-model tensor program instead of five sequential
    scans, and pair sweeps from different models interleave their forwards
    in the same pool (each job keeps its own MAD selection group, so
    verdicts match the per-model path exactly).

    Per-request setup replays :func:`execute_resolved` exactly — fresh RNG
    from the request seed, same checkpoint load, same clean sample — so a
    mega record differs from a worker record only by its inversion engine.

    Telemetry follows the same adopt-by-value protocol as
    :func:`execute_resolved`, keyed off the first stamped ``trace_id`` in
    the group.  The fused sweep is one computation shared by every request,
    so its spans and pool stats attach to the *first* fleet request's trace
    and record — per-request records still carry their own iteration counts,
    and summing pool stats across the group would double-count.
    """
    group_list = list(group)
    if not group_list:
        return []
    TRACER.check_fork()
    PROFILER.check_fork()
    lead = next((item for item in group_list if item.trace_id), None)
    adopted = lead is not None and not TRACER.enabled
    if adopted:
        TRACER.enable()
        PROFILER.enable()
    profiling = PROFILER.enabled
    if profiling:
        PROFILER.reset()
    if cache is None:
        cache = CleanActivationCache(max_bytes=activation_cache_bytes())
    cache_before = (cache.hits, cache.misses)
    records: List[Optional[ScanRecord]] = [None] * len(group_list)
    fleet: List[Tuple[int, ResolvedScan]] = []
    fleet_jobs: List[Tuple[Any, Module, Optional[List[int]]]] = []
    try:
        for position, resolved in enumerate(group_list):
            request = resolved.request
            rng = np.random.default_rng(request.seed)
            state, _ = load_checkpoint(request.checkpoint)
            model = _build_scan_model(resolved, state)
            clean = _clean_sample(resolved, rng)
            detector = build_request_detector(request, clean, rng)
            detector.activation_cache = cache
            detector.model_key = resolved.fingerprint
            detector.clean_key = _clean_key(resolved)
            classes = (list(request.classes)
                       if request.classes is not None else None)
            pairs = None
            if request.scenario != SCENARIO_ALL_TO_ONE:
                candidate_classes = (classes if classes is not None
                                     else list(range(clean.num_classes)))
                pairs = scan_pairs_for(request.scenario, candidate_classes,
                                       source_classes=request.source_classes)
            fleet.append((position, resolved))
            fleet_jobs.append((detector, model, classes, pairs))
        if fleet_jobs:
            lead_fleet = fleet[0][1]
            with TRACER.context(lead_fleet.trace_id,
                                lead_fleet.parent_span_id):
                with _span("mega.fleet", models=len(fleet_jobs)):
                    detections = detect_mega_fleet(fleet_jobs, cache=cache)
            for slot, ((position, resolved), detection) in enumerate(
                    zip(fleet, detections)):
                record = _mega_record(resolved, detection)
                if profiling:
                    record.telemetry = _scan_telemetry(resolved, detection,
                                                       fleet_jobs[slot][0])
                    if slot > 0:
                        # Shared-run stats live on the first record only.
                        record.telemetry.pop("pool", None)
                        record.telemetry.pop("phases", None)
                        record.telemetry.pop("counts", None)
                records[position] = record
        kept = [record for record in records if record is not None]
        if profiling and kept:
            cache_delta = {"hits": cache.hits - cache_before[0],
                           "misses": cache.misses - cache_before[1]}
            kept[0].telemetry.setdefault("pool", {})["cache"] = cache_delta
        if adopted and kept:
            kept[0].spans = TRACER.drain()
        return kept
    finally:
        if adopted:
            TRACER.reset()
            PROFILER.disable()
            PROFILER.reset()


# ---------------------------------------------------------------------- #
# Scheduler
# ---------------------------------------------------------------------- #
class ScanScheduler:
    """Runs scan batches over an execution backend with result-store caching.

    Args:
        store: Optional result store (any :func:`repro.service.open_store`
            layout); without one every request is computed fresh.
        workers: Pool size for the default (``pool``) backend.
            ``workers <= 1`` is the serial fallback: jobs run inline in the
            parent, in queue order — bit-identical to the pool path
            (workers are forked with the same seeds), just without the
            process hop.
        job_timeout: Default per-job wall-clock budget (seconds) for
            :meth:`run_jobs` on the pool path; ``None`` disables it.
        job_retries: Default retry budget per job — a failed (or timed-out)
            job is re-queued up to this many times before the batch fails.
        telemetry: Record trace spans and per-phase profiles for every
            request.  ``None`` (the default) follows ``REPRO_TELEMETRY``
            (on unless set falsy); pass False for library callers that
            must not touch the process-wide tracer.
        span_sink: Optional ``spans.jsonl`` path; finished spans of every
            batch are appended there (see
            :func:`repro.service.store.sidecar_path`).
        backend: Where planned jobs execute — an
            :class:`~repro.service.backends.ExecutionBackend` instance or a
            spec string (``inline`` / ``pool`` / ``fleet``).  ``None`` (the
            default) keeps the historical behavior: a process pool sized by
            ``workers``, falling back to inline execution for small
            batches.  ``fleet`` requires a store (its queue lives next to
            it) and verdicts stay identical across backends — only the
            processes doing the work change.
    """

    def __init__(self, store: Optional[ResultStore] = None,
                 workers: int = 0, job_timeout: Optional[float] = None,
                 job_retries: int = 0, telemetry: Optional[bool] = None,
                 span_sink: Optional[str] = None,
                 backend: Union[ExecutionBackend, str, None] = None) -> None:
        self.store = store
        self.workers = int(workers)
        self.job_timeout = job_timeout
        self.job_retries = int(job_retries)
        self.telemetry = (telemetry_enabled() if telemetry is None
                          else bool(telemetry))
        self.span_sink = span_sink
        self.backend = self._resolve_backend(backend)
        #: Cumulative counters over the scheduler's life (never reset).
        self.metrics = ServiceMetrics()
        #: Lazily-created activation cache shared by every mega batch this
        #: scheduler runs in-parent, so repeated scans of the same weights
        #: hit across batches (and the hit ratio is worth exporting).
        self._activation_cache: Optional[CleanActivationCache] = None

    def _resolve_backend(self, backend: Union[ExecutionBackend, str, None]
                         ) -> ExecutionBackend:
        """Materialize the ``backend`` argument into an instance."""
        if isinstance(backend, ExecutionBackend):
            return backend
        if backend is None:
            backend = "pool" if self.workers > 1 else "inline"
        store_path = getattr(self.store, "path", None)
        return create_backend(backend, workers=self.workers,
                              store_path=store_path)

    @property
    def cache_hits(self) -> int:
        """Requests served from the store so far (see :class:`ServiceMetrics`)."""
        return self.metrics.cache_hits

    @property
    def cache_misses(self) -> int:
        """Requests that required a fresh computation so far."""
        return self.metrics.cache_misses

    def _mega_cache(self) -> CleanActivationCache:
        """The scheduler-lifetime clean-activation cache for mega batches."""
        if self._activation_cache is None:
            self._activation_cache = CleanActivationCache(
                max_bytes=activation_cache_bytes())
        return self._activation_cache

    # ------------------------------------------------------------------ #
    # Generic dispatch through the execution backend
    # ------------------------------------------------------------------ #
    def run_jobs(self, fn: Callable[[_JobT], _ResultT],
                 payloads: Sequence[_JobT],
                 timeout: Optional[float] = None,
                 retries: Optional[int] = None) -> List[_ResultT]:
        """Apply a module-level ``fn`` to every payload, preserving order.

        Dispatch happens through the scheduler's execution backend: every
        payload goes through the prioritized planning queue (all at
        priority 0 here, so plain FIFO) with the scheduler's retry budget;
        process-based backends additionally enforce ``timeout`` seconds of
        wall clock per job.  A job that exhausts its retries re-raises its
        last error (:class:`JobTimeoutError` for timeouts and expired fleet
        leases), failing the batch.

        Args:
            fn: Module-level callable (must pickle for the pool path; must
                have a registered job kind for the fleet path).
            payloads: Job inputs; results come back in the same order.
            timeout: Per-job budget override (default: ``job_timeout``).
                Inline (serial) execution cannot be preempted, so the budget
                only applies on the pool path.
            retries: Retry budget override (default: ``job_retries``).

        Returns:
            ``[fn(p) for p in payloads]``, computed queue-driven.
        """
        timeout = self.job_timeout if timeout is None else timeout
        retries = self.job_retries if retries is None else int(retries)
        return self.backend.run(fn, list(payloads), timeout=timeout,
                                retries=retries, metrics=self.metrics)

    # ------------------------------------------------------------------ #
    # Cached scanning
    # ------------------------------------------------------------------ #
    @staticmethod
    def _served_copy(record: ScanRecord, item: ResolvedScan) -> ScanRecord:
        """A cache-hit copy of ``record``, relabelled for the current request.

        The verdict is addressed by weights, not by file, so a hit may have
        been computed from a different checkpoint path with identical
        weights — the copy reports the path/model/dataset the caller asked
        about.
        """
        copy = ScanRecord.from_dict(record.to_dict())
        copy.cache_hit = True
        copy.checkpoint = item.request.checkpoint
        copy.model = item.model
        copy.dataset = item.dataset
        return copy

    def scan(self, requests: Sequence[ScanRequest]) -> List[ScanRecord]:
        """Scan a batch, serving store hits and computing the rest in parallel.

        Args:
            requests: Scan jobs; the returned records line up with them.

        Returns:
            One :class:`~repro.service.records.ScanRecord` per request, in
            order — cache hits flagged via ``cache_hit``, fresh records
            appended to the attached store.
        """
        tracing = False
        if self.telemetry:
            TRACER.check_fork()
            PROFILER.check_fork()
            TRACER.enable()
            PROFILER.enable()
            tracing = True

        # Each request gets its own trace rooted at a ``scan.request`` span;
        # resolution (and its fingerprint span) runs inside that context so
        # parent-side work parents correctly before dispatch.  When a caller
        # already holds a trace context (the HTTP API roots one span per
        # request, the triage router runs stages under it), the roots join
        # that trace instead of opening fresh ones — the whole escalation
        # plan renders as one stitched tree.
        ambient_trace, ambient_parent = TRACER.current() if tracing else ("", "")
        checkpoint_cache: Dict[str, tuple] = {}
        resolved: List[ResolvedScan] = []
        roots = []
        for request in requests:
            root = (TRACER.begin("scan.request",
                                 trace_id=ambient_trace or new_trace_id(),
                                 parent_id=ambient_parent,
                                 detector=request.detector,
                                 checkpoint=request.checkpoint)
                    if tracing else None)
            with TRACER.context_of(root):
                item = resolve_request(request,
                                       checkpoint_cache=checkpoint_cache)
            if root is not None:
                item = dataclass_replace(item, trace_id=root.trace_id,
                                         parent_span_id=root.span_id)
            roots.append(root)
            resolved.append(item)
        del checkpoint_cache  # free the cached state dicts before dispatch

        planner = CachePlanner(self.store, self.metrics)
        results, pending = planner.plan(resolved, roots, self._served_copy,
                                        span_name="scan.cache_lookup")

        if pending:
            _LOG.info("Scanning %d/%d request(s) (%d served from cache) "
                      "via the %s backend.", len(pending), len(resolved),
                      sum(r is not None for r in results), self.backend.name)
            # Mega-mode requests batch across models/checkpoints, so they run
            # as one in-parent pool instead of fanning out to workers.
            mega = [(index, item) for index, item in pending
                    if item.request.inversion_mode == "mega"]
            rest = [(index, item) for index, item in pending
                    if item.request.inversion_mode != "mega"]
            computed: List[Tuple[int, ScanRecord]] = []
            if mega:
                _LOG.info("Pooling %d mega-mode scan(s) into one mega-batch.",
                          len(mega))
                cache = self._mega_cache()
                before = (cache.hits, cache.misses)
                mega_records = execute_mega_group([item for _, item in mega],
                                                  cache=cache)
                self.metrics.record_activation_cache(
                    cache.hits - before[0], cache.misses - before[1])
                computed.extend(zip((index for index, _ in mega),
                                    mega_records))
            if rest:
                fresh = self.run_jobs(execute_resolved,
                                      [item for _, item in rest])
                computed.extend(zip((index for index, _ in rest), fresh))
            for index, record in computed:
                # Stitch worker-recorded spans (pool path) into this
                # process's buffer; serial-path spans are already here.
                worker_spans = record.pop_spans()
                if tracing:
                    TRACER.add(worker_spans)
                results[index] = record
                self.metrics.record_latency(float(record.seconds))
                if self.store is not None:
                    self.store.add(record)

        # Fan computed records out to duplicate requests within the batch.
        by_key = {record.key: record for record in results if record is not None}
        for index, item in enumerate(resolved):
            if results[index] is None:
                results[index] = self._served_copy(by_key[item.key], item)
        if tracing:
            for root in roots:
                TRACER.finish(root)
            spans = TRACER.drain()
            if self.span_sink:
                write_spans(self.span_sink, spans)
        return [record for record in results if record is not None]

    def scan_one(self, request: ScanRequest) -> ScanRecord:
        """Convenience wrapper for single-request callers (the CLI)."""
        return self.scan([request])[0]
