"""Parallel scan scheduling over a process pool, with a cached fast path.

The :class:`ScanScheduler` takes batches of
:class:`~repro.service.records.ScanRequest` and returns one
:class:`~repro.service.records.ScanRecord` per request, in order:

1. every request is *resolved* in the parent — the checkpoint is read, its
   state dict fingerprinted, and the detector config digested into the cache
   key — so cache hits never reach a worker;
2. duplicate keys inside one batch collapse to a single computation;
3. the remaining misses run through a ``ProcessPoolExecutor`` (or inline
   when ``workers <= 1``, the serial fallback the test suite uses), each
   worker loading the checkpoint from disk and running the detector's
   batched ``detect()`` path;
4. fresh records are appended to the attached result store, making the next
   identical request a hit.

Worker entry points (:func:`execute_scan`, and whatever job function callers
hand to :meth:`ScanScheduler.run_jobs`) are module-level so they pickle under
every multiprocessing start method.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field as dataclass_field
from datetime import datetime, timezone
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, TypeVar

import numpy as np

from ..attacks.base import SCENARIO_ALL_TO_ONE, scan_pairs_for
from ..core.trigger_optimizer import TriggerOptimizationConfig
from ..core.uap import TargetedUAPConfig
from ..core.usb import USBConfig, USBDetector
from ..data import DATASET_SPECS, load_dataset, stratified_sample
from ..data.dataset import Dataset
from ..defenses import (
    NeuralCleanseConfig,
    NeuralCleanseDetector,
    TaborConfig,
    TaborDetector,
)
from ..models import build_model
from ..nn.layers import Module
from ..nn.serialization import load_checkpoint, validate_state_dict
from ..utils.logging import get_logger
from .fingerprint import digest_config, fingerprint_state_dict, scan_key
from .records import ScanRecord, ScanRequest
from .store import ResultStore

__all__ = ["ResolvedScan", "ScanScheduler", "resolve_request", "execute_scan",
           "execute_resolved", "build_request_detector"]

_LOG = get_logger("repro.service.scheduler")

_JobT = TypeVar("_JobT")
_ResultT = TypeVar("_ResultT")


def _utc_now() -> str:
    return datetime.now(timezone.utc).isoformat(timespec="seconds")


# ---------------------------------------------------------------------- #
# Request resolution (parent side: cheap, cache-key producing)
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class ResolvedScan:
    """A request with metadata applied and its cache key computed."""

    request: ScanRequest
    model: str
    dataset: str
    image_size: int
    fingerprint: str
    config_digest: str
    key: str
    #: Extra ``build_model`` kwargs from the checkpoint metadata (fleet
    #: checkpoints record their ``ExperimentScale.model_kwargs`` here so
    #: non-default architectures rebuild correctly).
    model_kwargs: Dict[str, object] = dataclass_field(default_factory=dict)


def _detector_config(request: ScanRequest):
    """The concrete detector config a request resolves to (digest input)."""
    kind = request.detector.lower()
    if kind == "usb":
        return USBConfig(
            uap=TargetedUAPConfig(max_passes=request.uap_passes),
            optimization=TriggerOptimizationConfig(
                iterations=request.iterations, ssim_weight=1.0,
                mask_l1_weight=0.01),
            anomaly_threshold=request.anomaly_threshold)
    if kind == "nc":
        return NeuralCleanseConfig(
            optimization=TriggerOptimizationConfig(
                iterations=request.iterations, ssim_weight=0.0,
                mask_l1_weight=0.01),
            anomaly_threshold=request.anomaly_threshold)
    if kind == "tabor":
        return TaborConfig(
            optimization=TriggerOptimizationConfig(
                iterations=request.iterations, ssim_weight=0.0,
                mask_l1_weight=0.01, mask_tv_weight=0.002,
                outside_pattern_weight=0.002),
            anomaly_threshold=request.anomaly_threshold)
    raise ValueError(f"Unknown detector '{request.detector}'.")


def build_request_detector(request: ScanRequest, clean_data: Dataset,
                           rng: np.random.Generator):
    """Instantiate the detector a request asks for."""
    kind = request.detector.lower()
    config = _detector_config(request)
    if kind == "usb":
        return USBDetector(clean_data, config, rng=rng)
    if kind == "nc":
        return NeuralCleanseDetector(clean_data, config, rng=rng)
    return TaborDetector(clean_data, config, rng=rng)


def resolve_request(request: ScanRequest,
                    checkpoint_cache: Optional[Dict[str, tuple]] = None
                    ) -> ResolvedScan:
    """Fill in metadata defaults and compute the request's cache key.

    ``checkpoint_cache`` (path -> (state, metadata, fingerprint)) lets batch
    callers resolve many requests against the same file with one read and
    one SHA-256 — a grid scans each checkpoint once per detector, and the
    weights do not change between those requests.
    """
    cached = checkpoint_cache.get(request.checkpoint) if checkpoint_cache else None
    if cached is not None:
        state, metadata, fingerprint = cached
    else:
        state, metadata = load_checkpoint(request.checkpoint)
        fingerprint = fingerprint_state_dict(state)
        if checkpoint_cache is not None:
            checkpoint_cache[request.checkpoint] = (state, metadata, fingerprint)
    model = request.model or metadata.get("model")
    dataset = request.dataset or metadata.get("dataset")
    if model is None or dataset is None:
        raise ValueError(
            f"{request.checkpoint}: checkpoint metadata does not name a "
            "model/dataset — pass --model and --dataset (or ScanRequest.model/"
            ".dataset) explicitly.")
    if dataset not in DATASET_SPECS:
        raise KeyError(f"Unknown dataset '{dataset}'. "
                       f"Available: {sorted(DATASET_SPECS)}")
    spec = DATASET_SPECS[dataset]
    image_size = int(request.image_size or metadata.get("image_size")
                     or spec.image_size)
    # The digest covers everything besides the weights that can change the
    # verdict: detector config, clean-data provenance, the class subset, and
    # the scenario axis — cached verdicts must never collide across
    # scenarios (an all-to-one scan and a source-conditional pair sweep of
    # the same weights are different results).
    digest = digest_config({
        "detector": request.detector.lower(),
        "config": _detector_config(request),
        "dataset": dataset,
        "image_size": image_size,
        "clean_budget": request.clean_budget,
        "samples_per_class": request.samples_per_class,
        "classes": list(request.classes) if request.classes is not None else None,
        "seed": request.seed,
        "scenario": request.scenario,
        "source_classes": (list(request.source_classes)
                           if request.source_classes is not None else None),
    })
    return ResolvedScan(
        request=request, model=model, dataset=dataset, image_size=image_size,
        fingerprint=fingerprint, config_digest=digest,
        key=scan_key(fingerprint, request.detector, digest),
        model_kwargs=dict(metadata.get("model_kwargs") or {}))


# ---------------------------------------------------------------------- #
# Worker entry point
# ---------------------------------------------------------------------- #
def _build_scan_model(resolved: ResolvedScan, state) -> Module:
    spec = DATASET_SPECS[resolved.dataset]
    model = build_model(resolved.model, num_classes=spec.num_classes,
                        in_channels=spec.channels,
                        image_size=resolved.image_size,
                        rng=np.random.default_rng(0),
                        **resolved.model_kwargs)
    validate_state_dict(model, state, source=resolved.request.checkpoint)
    model.load_state_dict(state)
    return model


def _clean_sample(resolved: ResolvedScan, rng: np.random.Generator) -> Dataset:
    request = resolved.request
    spec = DATASET_SPECS[resolved.dataset]
    per_class = max(1, -(-request.clean_budget // spec.num_classes))
    _, test_set = load_dataset(
        resolved.dataset, samples_per_class=request.samples_per_class,
        test_per_class=max(per_class, 2), seed=request.seed,
        image_size=resolved.image_size)
    return stratified_sample(test_set, request.clean_budget, rng)


def execute_resolved(resolved: ResolvedScan) -> ScanRecord:
    """Run one already-resolved scan: the worker-side half of a request.

    Runs inside pool workers (and inline for the serial fallback); must stay
    module-level and depend only on the picklable ``resolved`` payload.  The
    checkpoint is loaded exactly once here — the fingerprint and cache key
    were computed during resolution, so no re-hashing happens in the worker.
    """
    request = resolved.request
    rng = np.random.default_rng(request.seed)
    state, _ = load_checkpoint(request.checkpoint)
    model = _build_scan_model(resolved, state)
    clean = _clean_sample(resolved, rng)
    detector = build_request_detector(request, clean, rng)
    classes = list(request.classes) if request.classes is not None else None
    pairs = None
    if request.scenario != SCENARIO_ALL_TO_ONE:
        candidate_classes = (classes if classes is not None
                             else list(range(clean.num_classes)))
        pairs = scan_pairs_for(request.scenario, candidate_classes,
                               source_classes=request.source_classes)
    start = time.perf_counter()
    detection = detector.detect(model, classes=classes, pairs=pairs)
    detection.seconds_total = time.perf_counter() - start
    return ScanRecord.from_detection(
        key=resolved.key, fingerprint=resolved.fingerprint,
        config_digest=resolved.config_digest, checkpoint=request.checkpoint,
        model=resolved.model, dataset=resolved.dataset, detection=detection,
        created_at=_utc_now(), worker_pid=os.getpid())


def execute_scan(request: ScanRequest) -> ScanRecord:
    """One-shot convenience entry: resolve ``request`` and scan it."""
    return execute_resolved(resolve_request(request))


# ---------------------------------------------------------------------- #
# Scheduler
# ---------------------------------------------------------------------- #
class ScanScheduler:
    """Runs scan batches across a worker pool with result-store caching.

    ``workers <= 1`` is the serial fallback: jobs run inline in the parent,
    in submission order — bit-identical to the pool path (workers are forked
    with the same seeds), just without the process hop.  The store is
    optional; without one every request is computed fresh.
    """

    def __init__(self, store: Optional[ResultStore] = None,
                 workers: int = 0) -> None:
        self.store = store
        self.workers = int(workers)
        #: Batch counters, reset never — cumulative over the scheduler's life.
        self.cache_hits = 0
        self.cache_misses = 0

    # ------------------------------------------------------------------ #
    # Generic parallel map (also used by the experiment fleet)
    # ------------------------------------------------------------------ #
    def run_jobs(self, fn: Callable[[_JobT], _ResultT],
                 payloads: Sequence[_JobT]) -> List[_ResultT]:
        """Apply a module-level ``fn`` to every payload, preserving order."""
        items = list(payloads)
        if self.workers <= 1 or len(items) <= 1:
            return [fn(item) for item in items]
        max_workers = min(self.workers, len(items))
        with ProcessPoolExecutor(max_workers=max_workers) as pool:
            return list(pool.map(fn, items))

    # ------------------------------------------------------------------ #
    # Cached scanning
    # ------------------------------------------------------------------ #
    @staticmethod
    def _served_copy(record: ScanRecord, item: ResolvedScan) -> ScanRecord:
        """A cache-hit copy of ``record``, relabelled for the current request.

        The verdict is addressed by weights, not by file, so a hit may have
        been computed from a different checkpoint path with identical
        weights — the copy reports the path/model/dataset the caller asked
        about.
        """
        copy = ScanRecord.from_dict(record.to_dict())
        copy.cache_hit = True
        copy.checkpoint = item.request.checkpoint
        copy.model = item.model
        copy.dataset = item.dataset
        return copy

    def scan(self, requests: Sequence[ScanRequest]) -> List[ScanRecord]:
        """Scan a batch, serving store hits and computing the rest in parallel."""
        checkpoint_cache: Dict[str, tuple] = {}
        resolved = [resolve_request(request, checkpoint_cache=checkpoint_cache)
                    for request in requests]
        del checkpoint_cache  # free the cached state dicts before dispatch
        results: List[Optional[ScanRecord]] = [None] * len(resolved)

        pending: List[Tuple[int, ResolvedScan]] = []
        pending_keys = set()
        for index, item in enumerate(resolved):
            cached = self.store.lookup(item.key) if self.store else None
            if cached is not None:
                results[index] = self._served_copy(cached, item)
                self.cache_hits += 1
                continue
            if item.key in pending_keys:
                # Duplicate inside this batch: computed once below and served
                # as a hit, so it counts as one.
                self.cache_hits += 1
                continue
            self.cache_misses += 1
            pending_keys.add(item.key)
            pending.append((index, item))

        if pending:
            _LOG.info("Scanning %d/%d request(s) (%d served from cache) "
                      "with %d worker(s).", len(pending), len(resolved),
                      sum(r is not None for r in results), max(self.workers, 1))
            fresh = self.run_jobs(execute_resolved, [item for _, item in pending])
            for (index, _), record in zip(pending, fresh):
                results[index] = record
                if self.store is not None:
                    self.store.add(record)

        # Fan computed records out to duplicate requests within the batch.
        by_key = {record.key: record for record in results if record is not None}
        for index, item in enumerate(resolved):
            if results[index] is None:
                results[index] = self._served_copy(by_key[item.key], item)
        return [record for record in results if record is not None]

    def scan_one(self, request: ScanRequest) -> ScanRecord:
        """Convenience wrapper for single-request callers (the CLI)."""
        return self.scan([request])[0]
