"""Command-line front end for the scanning service: ``python -m repro``.

Four subcommands::

    python -m repro scan checkpoint.npz --detector usb
    python -m repro scan checkpoint.npz --scenario source_conditional \
        --source-classes 1,2
    python -m repro grid ckpt_a.npz ckpt_b.npz --detectors usb,nc --workers 2
    python -m repro report --store scan_results.jsonl
    python -m repro experiment --table table5 --scale bench \
        --scenarios all_to_one,source_conditional,all_to_all

``scan`` runs one detector on one saved model; ``grid`` fans a
checkpoint x detector matrix across the worker pool; ``report`` renders the
result store; ``experiment`` trains and scans a paper table expanded along
the scenario axis.  ``scan``/``grid``/``report`` share one JSONL store
(``--store``, default ``scan_results.jsonl``), so a repeated scan of an
identical (weights, detector, config, scenario) tuple is served from cache
and labelled as such — the scenario is part of the cache key, so verdicts
never collide across scenarios.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
from typing import List, Optional, Sequence

from ..attacks.base import SCENARIO_ALL_TO_ONE, SCENARIOS
from ..data import DATASET_SPECS
from ..models import MODEL_BUILDERS
from .records import KNOWN_DETECTORS, ScanRecord, ScanRequest
from .scheduler import ScanScheduler
from .store import ResultStore

__all__ = ["build_parser", "main"]

DEFAULT_STORE = "scan_results.jsonl"


def _add_scan_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--model", choices=sorted(MODEL_BUILDERS),
                        help="Architecture to rebuild (default: checkpoint metadata).")
    parser.add_argument("--dataset", choices=sorted(DATASET_SPECS),
                        help="Dataset family for the clean set (default: metadata).")
    parser.add_argument("--image-size", type=int, default=None,
                        help="Input resolution (default: metadata, then dataset spec).")
    parser.add_argument("--classes", type=str, default=None,
                        help="Comma-separated candidate target classes (default: all).")
    parser.add_argument("--scenario", default=SCENARIO_ALL_TO_ONE,
                        choices=list(SCENARIOS),
                        help="Scan scenario; non-all-to-one scans sweep the "
                             "(source, target) pair grid.")
    parser.add_argument("--source-classes", type=str, default=None,
                        help="Comma-separated suspected source classes "
                             "(source_conditional scans; default: all candidates).")
    parser.add_argument("--clean-budget", type=int, default=60,
                        help="Clean images handed to the detector (paper: 300).")
    parser.add_argument("--samples-per-class", type=int, default=30,
                        help="Per-class size of the synthesized clean pool.")
    parser.add_argument("--iterations", type=int, default=40,
                        help="Trigger-optimization iterations (Alg. 2).")
    parser.add_argument("--uap-passes", type=int, default=1,
                        help="UAP sweeps over the clean set (Alg. 1, USB only).")
    parser.add_argument("--anomaly-threshold", type=float, default=2.0,
                        help="MAD anomaly index above which a class is flagged.")
    parser.add_argument("--seed", type=int, default=0)


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--store", default=DEFAULT_STORE,
                        help=f"JSONL result store (default: {DEFAULT_STORE}).")
    parser.add_argument("--no-store", action="store_true",
                        help="Disable the cache: always recompute, never persist.")
    parser.add_argument("--workers", type=int, default=0,
                        help="Worker processes; 0/1 runs scans inline (serial).")
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="Emit machine-readable JSON instead of tables.")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="USB/NC/TABOR backdoor-scanning service.")
    commands = parser.add_subparsers(dest="command", required=True)

    scan = commands.add_parser(
        "scan", help="Scan one saved checkpoint with one detector.")
    scan.add_argument("checkpoint", help="Path to a .npz checkpoint.")
    scan.add_argument("--detector", default="usb",
                      choices=list(KNOWN_DETECTORS))
    _add_scan_options(scan)
    _add_common(scan)

    grid = commands.add_parser(
        "grid", help="Scan a checkpoint x detector grid across workers.")
    grid.add_argument("checkpoints", nargs="+",
                      help="One or more .npz checkpoints.")
    grid.add_argument("--detectors", default="usb",
                      help="Comma-separated detector list (e.g. usb,nc,tabor).")
    _add_scan_options(grid)
    _add_common(grid)

    report = commands.add_parser(
        "report", help="Render the result store as a table.")
    report.add_argument("--store", default=DEFAULT_STORE)
    report.add_argument("--detector", default=None,
                        help="Only show records from this detector.")
    report.add_argument("--json", action="store_true", dest="as_json")

    experiment = commands.add_parser(
        "experiment",
        help="Train + scan one paper table expanded along the scenario axis.")
    experiment.add_argument("--table", default="table5",
                            help="Table config name (table1..table6).")
    experiment.add_argument("--scale", default="bench",
                            help="Scale preset (bench/tiny/small/paper).")
    experiment.add_argument("--scenarios", default=SCENARIO_ALL_TO_ONE,
                            help="Comma-separated scenario list "
                                 f"({','.join(SCENARIOS)}).")
    experiment.add_argument("--cases", type=str, default=None,
                            help="Comma-separated base-case filter "
                                 "(e.g. badnet_3x3).")
    experiment.add_argument("--detectors", type=str, default=None,
                            help="Comma-separated detector subset "
                                 "(default: the table's own list).")
    experiment.add_argument("--source-classes", type=str, default=None,
                            help="Source classes for source_conditional cases "
                                 "(default: the two classes after the target).")
    experiment.add_argument("--seed", type=int, default=0)
    experiment.add_argument("--workers", type=int, default=0,
                            help="Dispatch the (case, model) fleet across N "
                                 "worker processes; 0/1 runs serially.")
    experiment.add_argument("--json", action="store_true", dest="as_json")
    return parser


def _parse_classes(text: Optional[str]) -> Optional[tuple]:
    if text is None or not text.strip():
        return None
    return tuple(int(part) for part in text.split(",") if part.strip())


def _request_from_args(args: argparse.Namespace, checkpoint: str,
                       detector: str) -> ScanRequest:
    return ScanRequest(
        checkpoint=checkpoint, detector=detector, model=args.model,
        dataset=args.dataset, image_size=args.image_size,
        classes=_parse_classes(args.classes), clean_budget=args.clean_budget,
        samples_per_class=args.samples_per_class, iterations=args.iterations,
        uap_passes=args.uap_passes, anomaly_threshold=args.anomaly_threshold,
        seed=args.seed, scenario=args.scenario,
        source_classes=_parse_classes(args.source_classes))


def _make_scheduler(args: argparse.Namespace) -> ScanScheduler:
    store = None if args.no_store else ResultStore(args.store)
    return ScanScheduler(store=store, workers=args.workers)


def _print_records(records: Sequence[ScanRecord], as_json: bool,
                   out=None) -> None:
    out = out or sys.stdout
    if as_json:
        out.write(json.dumps([r.to_dict() | {"cache_hit": r.cache_hit}
                              for r in records], indent=2) + "\n")
        return
    from ..eval.reporting import format_scan_records
    out.write(format_scan_records(records) + "\n")


# ---------------------------------------------------------------------- #
# Subcommands
# ---------------------------------------------------------------------- #
def _cmd_scan(args: argparse.Namespace) -> int:
    scheduler = _make_scheduler(args)
    record = scheduler.scan_one(_request_from_args(args, args.checkpoint,
                                                   args.detector))
    if args.as_json:
        _print_records([record], as_json=True)
        return 0
    verdict = "BACKDOORED" if record.is_backdoored else "clean"
    source = "cache hit" if record.cache_hit else f"computed in {record.seconds:.1f}s"
    print(f"{args.checkpoint} [{record.detector}] -> {verdict} ({source})")
    print(f"  model={record.model} dataset={record.dataset} "
          f"fingerprint={record.fingerprint[:16]}...")
    detection = record.to_detection_result()
    if detection.pair_anomaly_indices:
        print(f"  scenario={args.scenario}: "
              f"{len(detection.pair_anomaly_indices)} (source->target) cell(s)")
        for pair in sorted(detection.per_pair_l1,
                           key=lambda p: (p[1], -1 if p[0] is None else p[0])):
            source, target = pair
            flag = "  <-- flagged" if pair in detection.flagged_pairs else ""
            print(f"  {'*' if source is None else source}->{target}: "
                  f"L1={detection.per_pair_l1[pair]:10.2f}  "
                  f"anomaly={detection.pair_anomaly_indices.get(pair, 0.0):6.2f}"
                  f"{flag}")
    else:
        for cls in sorted(detection.per_class_l1):
            flag = "  <-- flagged" if cls in record.flagged_classes else ""
            print(f"  class {cls}: L1={detection.per_class_l1[cls]:10.2f}  "
                  f"anomaly={detection.anomaly_indices.get(cls, 0.0):6.2f}{flag}")
    if not args.no_store:
        print(f"  store: {args.store} ({len(scheduler.store)} record(s); "
              f"hits={scheduler.cache_hits} misses={scheduler.cache_misses})")
    return 0


def _cmd_grid(args: argparse.Namespace) -> int:
    detectors = [d.strip() for d in args.detectors.split(",") if d.strip()]
    if not detectors:
        print("grid: no detectors given.", file=sys.stderr)
        return 2
    requests = [_request_from_args(args, checkpoint, detector)
                for checkpoint in args.checkpoints
                for detector in detectors]
    scheduler = _make_scheduler(args)
    records = scheduler.scan(requests)
    _print_records(records, as_json=args.as_json)
    if not args.as_json:
        print(f"{len(records)} scan(s); cache hits={scheduler.cache_hits} "
              f"misses={scheduler.cache_misses}; workers={max(args.workers, 1)}")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    store = ResultStore(args.store)
    records = store.records()
    if args.detector:
        records = [r for r in records
                   if r.detector.lower() == args.detector.lower()]
    if not records:
        print(f"{args.store}: no records"
              + (f" for detector '{args.detector}'" if args.detector else "")
              + ".")
        return 0
    _print_records(records, as_json=args.as_json)
    if not args.as_json:
        backdoored = sum(1 for r in records if r.is_backdoored)
        print(f"{len(records)} record(s): {backdoored} backdoored, "
              f"{len(records) - backdoored} clean.")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    from ..eval.experiments import (
        SCALES,
        TABLE_CONFIGS,
        run_experiment,
        scenario_grid_config,
    )
    from ..eval.reporting import detection_table_columns, format_table

    if args.table not in TABLE_CONFIGS:
        print(f"experiment: unknown table '{args.table}'. "
              f"Available: {sorted(TABLE_CONFIGS)}", file=sys.stderr)
        return 2
    if args.scale not in SCALES:
        print(f"experiment: unknown scale '{args.scale}'. "
              f"Available: {sorted(SCALES)}", file=sys.stderr)
        return 2
    scenarios = [s.strip() for s in args.scenarios.split(",") if s.strip()]
    if not scenarios:
        print("experiment: no scenarios given.", file=sys.stderr)
        return 2
    config = TABLE_CONFIGS[args.table](args.scale)
    if args.detectors:
        detectors = tuple(d.strip() for d in args.detectors.split(",")
                          if d.strip())
        config = dataclasses.replace(config, detectors=detectors)
    cases = ([c.strip() for c in args.cases.split(",") if c.strip()]
             if args.cases else None)
    config = scenario_grid_config(
        config, scenarios, cases=cases,
        source_classes=_parse_classes(args.source_classes))
    scheduler = (ScanScheduler(workers=args.workers)
                 if args.workers and args.workers > 1 else None)
    result = run_experiment(config, seed=args.seed, scheduler=scheduler)
    rows = result.rows()
    if args.as_json:
        print(json.dumps(rows, indent=2))
        return 0
    print(format_table(rows, columns=detection_table_columns,
                       title=f"{config.name} [{args.scale}] x "
                             f"scenarios({','.join(scenarios)})"))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {"scan": _cmd_scan, "grid": _cmd_grid, "report": _cmd_report,
                "experiment": _cmd_experiment}
    try:
        return handlers[args.command](args)
    except (OSError, KeyError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
