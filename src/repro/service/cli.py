"""Command-line front end for the scanning service: ``python -m repro``.

Subcommands::

    python -m repro scan checkpoint.npz --detector usb
    python -m repro scan checkpoint.npz --scenario source_conditional \
        --source-classes 1,2
    python -m repro grid ckpt_a.npz ckpt_b.npz --detectors usb,nc --workers 2
    python -m repro repair checkpoint.npz --strategy both \
        --max-accuracy-drop 3
    python -m repro report --store scan_results.jsonl
    python -m repro experiment --table table5 --scale bench \
        --scenarios all_to_one,source_conditional,all_to_all
    python -m repro watch drop_dir/ --store scans/ --detectors usb,nc \
        --auto-repair
    python -m repro store compact --store scans/
    python -m repro store merge --store scans/ --source other_store/
    python -m repro trace --store scans/            # list recorded traces
    python -m repro trace <trace-id> --store scans/ # render one span tree
    python -m repro metrics --store scans/          # Prometheus exposition
    python -m repro serve scans/ --port 8080        # HTTP scan/repair API
    python -m repro scan checkpoint.npz --strategy fastest  # routed triage
    python -m repro worker scans/                   # one fleet worker
    python -m repro grid ... --backend fleet        # dispatch to the fleet

``scan`` runs one detector on one saved model; ``grid`` fans a
checkpoint x detector matrix across the worker pool; ``repair`` runs the
detect -> repair -> verify pipeline (:mod:`repro.mitigation`) on one or
more checkpoints, writing repaired weights next to the originals;
``report`` renders the result store (plus the daemon's stats endpoint when
one exists); ``experiment`` trains and scans a paper table expanded along
the scenario axis (``--repair-strategies`` turns it into a repair sweep
with true ASR before/after); ``watch`` runs the drop-directory daemon
(:mod:`repro.service.daemon`; ``--auto-repair`` repairs every flagged
checkpoint automatically); ``store compact`` / ``store merge`` maintain a
store in place; ``trace`` renders the span trees recorded in
``spans.jsonl`` beside the store; ``metrics`` renders the same Prometheus
exposition the daemon writes to ``metrics.prom`` each cycle; ``serve``
runs the long-lived HTTP front end (:mod:`repro.service.api`) over the
same store.

Every scan-running command accepts ``--backend inline|pool|fleet``: where
a planned batch executes (:mod:`repro.service.backends`).  ``fleet``
submits jobs onto a store-adjacent shared queue that any number of
``python -m repro worker <store>`` processes drain under lease-based
ownership (:mod:`repro.service.fleet`) — verdicts are identical across
backends because resolve/digest/cache logic is backend-independent.

``scan --strategy fastest|cheapest|thorough`` replaces the single
``--detector`` run with the strategy-routed escalation plan
(:mod:`repro.service.routing`): USB probes first and NC/TABOR run only on
suspicion, with a per-request cost breakdown printed (and stamped on the
record telemetry).

Telemetry (spans + per-phase profiles) is on by default for service
commands; disable it per invocation with ``--no-telemetry`` or globally
with ``REPRO_TELEMETRY=0``.  The global ``--log-level`` flag (or
``REPRO_LOG_LEVEL``) controls the shared ``repro`` logger.

All commands share one result store (``--store``).  The default is the
legacy single-file ``scan_results.jsonl``; point ``--store`` at a directory
(or any extension-less path) to get the sharded multi-writer layout that
concurrent schedulers and daemons can write simultaneously.  A repeated scan
of an identical (weights, detector, config, scenario) tuple is served from
cache and labelled as such — the scenario is part of the cache key, so
verdicts never collide across scenarios.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import sys
from typing import List, Optional, Sequence

from ..attacks.base import SCENARIO_ALL_TO_ONE, SCENARIOS
from ..core.detection import INVERSION_MODES
from ..data import DATASET_SPECS
from ..models import MODEL_BUILDERS
from ..obs.metrics import build_service_registry, summarize_telemetry
from ..obs.render import (format_trace_summaries, render_trace,
                          summarize_traces)
from ..obs.trace import read_spans
from ..utils.logging import set_log_level
from .backends import BACKEND_NAMES
from .daemon import DaemonConfig, WatchDaemon, default_stats_path
from .fleet import fleet_snapshot, run_worker
from .locks import atomic_write
from .records import KNOWN_DETECTORS, RepairRecord, ScanRecord, ScanRequest
from .repair import RepairRequest, run_repairs
from .routing import STRATEGIES, RoutingPolicy, route_scan
from .scheduler import ScanScheduler
from .store import SPANS_NAME, open_store, sidecar_path, stream_records

#: Repair strategies the CLI offers (mirrors repro.mitigation.STRATEGIES
#: without importing the mitigation package at CLI-import time).
REPAIR_STRATEGIES = ("unlearn", "prune", "both")

__all__ = ["build_parser", "main"]

DEFAULT_STORE = "scan_results.jsonl"


def _add_scan_options(parser: argparse.ArgumentParser) -> None:
    """Attach the scan-budget/scenario flags shared by scan-like commands."""
    parser.add_argument("--model", choices=sorted(MODEL_BUILDERS),
                        help="Architecture to rebuild (default: checkpoint metadata).")
    parser.add_argument("--dataset", choices=sorted(DATASET_SPECS),
                        help="Dataset family for the clean set (default: metadata).")
    parser.add_argument("--image-size", type=int, default=None,
                        help="Input resolution (default: metadata, then dataset spec).")
    parser.add_argument("--classes", type=str, default=None,
                        help="Comma-separated candidate target classes (default: all).")
    parser.add_argument("--scenario", default=SCENARIO_ALL_TO_ONE,
                        choices=list(SCENARIOS),
                        help="Scan scenario; non-all-to-one scans sweep the "
                             "(source, target) pair grid.")
    parser.add_argument("--source-classes", type=str, default=None,
                        help="Comma-separated suspected source classes "
                             "(source_conditional scans; default: all candidates).")
    parser.add_argument("--clean-budget", type=int, default=60,
                        help="Clean images handed to the detector (paper: 300).")
    parser.add_argument("--samples-per-class", type=int, default=30,
                        help="Per-class size of the synthesized clean pool.")
    parser.add_argument("--iterations", type=int, default=40,
                        help="Trigger-optimization iterations (Alg. 2).")
    parser.add_argument("--uap-passes", type=int, default=1,
                        help="UAP sweeps over the clean set (Alg. 1, USB only).")
    parser.add_argument("--anomaly-threshold", type=float, default=2.0,
                        help="MAD anomaly index above which a class is flagged.")
    parser.add_argument("--inversion-mode", choices=INVERSION_MODES,
                        default="batched",
                        help="Trigger-inversion engine: 'sequential' "
                             "(per-class loop), 'batched' (stacked per-model "
                             "fast path, default), or 'mega' (cross-model "
                             "work-item pool with the budget cascade).")
    parser.add_argument("--seed", type=int, default=0)


def _add_repair_options(parser: argparse.ArgumentParser) -> None:
    """Attach the repair-strategy/budget flags of the ``repair`` command."""
    parser.add_argument("--strategy", default="both",
                        choices=list(REPAIR_STRATEGIES),
                        help="Repair strategy: trigger-informed unlearning, "
                             "activation-differential pruning, or both.")
    parser.add_argument("--unlearn-epochs", type=int, default=3,
                        help="Unlearning fine-tune epochs over the clean set.")
    parser.add_argument("--learning-rate", type=float, default=1e-3,
                        help="Unlearning fine-tune learning rate.")
    parser.add_argument("--stamp-fraction", type=float, default=0.5,
                        help="Fraction of each unlearning batch stamped with "
                             "a reversed trigger.")
    parser.add_argument("--prune-fraction", type=float, default=0.1,
                        help="Max fraction of penultimate units pruned.")
    parser.add_argument("--max-accuracy-drop", type=float, default=3.0,
                        help="Clean-accuracy guardrail in percentage points; "
                             "a worse repair is rolled back.")
    parser.add_argument("--no-rescan", action="store_true",
                        help="Skip the post-repair detector re-scan.")
    parser.add_argument("--output-dir", default=None,
                        help="Directory for repaired checkpoints (default: "
                             "next to the originals, digest-suffixed).")


def _add_common(parser: argparse.ArgumentParser) -> None:
    """Attach the store/worker/output flags shared by most commands."""
    parser.add_argument("--store", default=DEFAULT_STORE,
                        help="Result store: a .jsonl file (single-writer) or "
                             "a directory for the sharded multi-writer "
                             f"layout (default: {DEFAULT_STORE}).")
    parser.add_argument("--no-store", action="store_true",
                        help="Disable the cache: always recompute, never persist.")
    parser.add_argument("--workers", type=int, default=0,
                        help="Worker processes; 0/1 runs scans inline (serial).")
    parser.add_argument("--backend", default=None, choices=list(BACKEND_NAMES),
                        help="Execution backend: inline (serial), pool "
                             "(process pool sized by --workers), or fleet "
                             "(store-adjacent shared queue drained by "
                             "'python -m repro worker' processes). Default: "
                             "pool when --workers > 1, else inline.")
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="Emit machine-readable JSON instead of tables.")
    parser.add_argument("--no-telemetry", action="store_true",
                        help="Disable trace spans and per-phase profiling "
                             "for this invocation (REPRO_TELEMETRY=0 "
                             "disables them globally).")


def build_parser() -> argparse.ArgumentParser:
    """Build the ``python -m repro`` argument parser (all subcommands).

    Returns:
        The configured :class:`argparse.ArgumentParser`.
    """
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="USB/NC/TABOR backdoor-scanning service.")
    parser.add_argument("--log-level", default=None,
                        help="Logging level for the shared 'repro' logger "
                             "(DEBUG/INFO/WARNING/ERROR; default: "
                             "REPRO_LOG_LEVEL, then INFO).")
    commands = parser.add_subparsers(dest="command", required=True)

    scan = commands.add_parser(
        "scan", help="Scan one saved checkpoint with one detector.")
    scan.add_argument("checkpoint", help="Path to a .npz checkpoint.")
    scan.add_argument("--detector", default="usb",
                      choices=list(KNOWN_DETECTORS))
    scan.add_argument("--strategy", default=None, choices=list(STRATEGIES),
                      help="Run the strategy-routed triage plan instead of "
                           "a single detector: USB probes first, NC/TABOR "
                           "escalate only on suspicion (fastest: one "
                           "parallel escalation batch; cheapest: serial, "
                           "stop at first confirmation; thorough: all).")
    _add_scan_options(scan)
    _add_common(scan)

    grid = commands.add_parser(
        "grid", help="Scan a checkpoint x detector grid across workers.")
    grid.add_argument("checkpoints", nargs="+",
                      help="One or more .npz checkpoints.")
    grid.add_argument("--detectors", default="usb",
                      help="Comma-separated detector list (e.g. usb,nc,tabor).")
    _add_scan_options(grid)
    _add_common(grid)

    repair = commands.add_parser(
        "repair", help="Detect, repair, and verify one or more checkpoints.")
    repair.add_argument("checkpoints", nargs="+",
                        help="One or more .npz checkpoints.")
    repair.add_argument("--detector", default="usb",
                        choices=list(KNOWN_DETECTORS))
    _add_scan_options(repair)
    _add_repair_options(repair)
    _add_common(repair)

    report = commands.add_parser(
        "report", help="Render the result store (and daemon stats) as tables.")
    report.add_argument("--store", default=DEFAULT_STORE)
    report.add_argument("--detector", default=None,
                        help="Only show records from this detector.")
    report.add_argument("--stats", default=None,
                        help="Daemon stats endpoint file (default: derived "
                             "from --store; shown only when it exists).")
    report.add_argument("--json", action="store_true", dest="as_json")

    watch = commands.add_parser(
        "watch", help="Daemon: poll a drop directory, scan new checkpoints.")
    watch.add_argument("directory", help="Drop directory to watch for .npz files.")
    watch.add_argument("--detectors", default="usb",
                       help="Comma-separated detector list run per checkpoint.")
    watch.add_argument("--poll-interval", type=float, default=2.0,
                       help="Seconds between directory polls.")
    watch.add_argument("--job-timeout", type=float, default=None,
                       help="Kill a scan after this many seconds (default: "
                            "unlimited).")
    watch.add_argument("--retries", type=int, default=1,
                       help="Retry budget per failed/timed-out job.")
    watch.add_argument("--settle-polls", type=int, default=1,
                       help="Polls a file must stay unchanged before scanning "
                            "(guards against half-copied checkpoints).")
    watch.add_argument("--max-iterations", type=int, default=0,
                       help="Stop after N polls (0 = run until interrupted).")
    watch.add_argument("--stats", default=None,
                       help="Stats endpoint file (default: derived from "
                            "--store).")
    watch.add_argument("--auto-repair", action="store_true",
                       help="Automatically repair every checkpoint flagged "
                            "as backdoored (queued behind the scans).")
    watch.add_argument("--repair-strategy", default="both",
                       choices=list(REPAIR_STRATEGIES),
                       help="Strategy used by --auto-repair.")
    watch.add_argument("--no-telemetry", action="store_true",
                       help="Disable trace spans, per-phase profiling, and "
                            "the metrics.prom export.")
    watch.add_argument("--backend", default=None,
                       choices=["child"] + list(BACKEND_NAMES),
                       help="Job execution backend: child (killable child "
                            "process per scan, the default), fleet (hand "
                            "jobs to 'python -m repro worker' processes), "
                            "or inline/pool.")
    _add_scan_options(watch)
    watch.add_argument("--store", default=DEFAULT_STORE,
                       help="Result store; use a directory for the sharded "
                            "multi-writer layout.")

    trace = commands.add_parser(
        "trace", help="Render recorded trace spans (spans.jsonl beside the "
                      "store).")
    trace.add_argument("trace_id", nargs="?", default=None,
                       help="Trace id to render as a span tree (omit to list "
                            "recorded traces).")
    trace.add_argument("--store", default=DEFAULT_STORE,
                       help="Result store whose spans.jsonl sidecar to read.")

    serve = commands.add_parser(
        "serve", help="Run the HTTP scan/repair API over a result store.")
    serve.add_argument("store", help="Result store the API reads and writes "
                                     "(directory for the sharded layout).")
    serve.add_argument("--host", default="127.0.0.1",
                       help="Bind address (default: loopback).")
    serve.add_argument("--port", type=int, default=8321,
                       help="Bind port; 0 picks an ephemeral port.")
    serve.add_argument("--workers", type=int, default=0,
                       help="Scheduler worker processes; 0/1 runs scans "
                            "inline on the dispatcher thread.")
    serve.add_argument("--retries", type=int, default=1,
                       help="Retry budget per failed job before it is "
                            "marked failed.")
    serve.add_argument("--no-telemetry", action="store_true",
                       help="Disable trace spans and per-phase profiling.")
    serve.add_argument("--backend", default=None,
                       choices=list(BACKEND_NAMES),
                       help="Scheduler execution backend; 'fleet' dispatches "
                            "every job to the store's worker fleet, tagged "
                            "with the submitting tenant.")

    worker = commands.add_parser(
        "worker", help="Run one fleet worker over a store's shared queue.")
    worker.add_argument("store",
                        help="Result store whose fleet/ queue to serve "
                             "(jobs arrive from any --backend fleet "
                             "submitter sharing this store).")
    worker.add_argument("--worker-id", default=None,
                        help="Stable worker identity on lease/presence "
                             "events (default: a fresh worker-<hex> id).")
    worker.add_argument("--lease-seconds", type=float, default=30.0,
                        help="Lease duration stamped on acquire and each "
                             "heartbeat renewal; a worker silent for this "
                             "long forfeits its job to the fleet.")
    worker.add_argument("--poll-interval", type=float, default=0.2,
                        help="Idle sleep between acquire attempts.")
    worker.add_argument("--max-jobs", type=int, default=0,
                        help="Exit after executing N jobs (0 = no limit).")
    worker.add_argument("--idle-timeout", type=float, default=0.0,
                        help="Exit after this many seconds without work "
                             "(0 = run until interrupted).")

    metrics = commands.add_parser(
        "metrics", help="Render service metrics in Prometheus text format.")
    metrics.add_argument("--store", default=DEFAULT_STORE,
                         help="Result store the metric families are built "
                              "from.")
    metrics.add_argument("--stats", default=None,
                         help="Daemon stats endpoint file (default: derived "
                              "from --store when it exists).")
    metrics.add_argument("--output", default=None,
                         help="Write the exposition atomically to this file "
                              "instead of stdout.")

    store = commands.add_parser(
        "store", help="Maintain a result store in place.")
    store_commands = store.add_subparsers(dest="store_command", required=True)
    compact = store_commands.add_parser(
        "compact", help="Dedupe superseded records and rewrite the shards.")
    compact.add_argument("--store", default=DEFAULT_STORE)
    merge = store_commands.add_parser(
        "merge", help="Fold a foreign store in (existing cache keys win).")
    merge.add_argument("--store", default=DEFAULT_STORE,
                       help="Destination store.")
    merge.add_argument("--source", required=True,
                       help="Foreign store (file or directory) to merge in.")

    experiment = commands.add_parser(
        "experiment",
        help="Train + scan one paper table expanded along the scenario axis.")
    experiment.add_argument("--table", default="table5",
                            help="Table config name (table1..table6).")
    experiment.add_argument("--scale", default="bench",
                            help="Scale preset (bench/tiny/small/paper).")
    experiment.add_argument("--scenarios", default=SCENARIO_ALL_TO_ONE,
                            help="Comma-separated scenario list "
                                 f"({','.join(SCENARIOS)}).")
    experiment.add_argument("--cases", type=str, default=None,
                            help="Comma-separated base-case filter "
                                 "(e.g. badnet_3x3).")
    experiment.add_argument("--detectors", type=str, default=None,
                            help="Comma-separated detector subset "
                                 "(default: the table's own list).")
    experiment.add_argument("--source-classes", type=str, default=None,
                            help="Source classes for source_conditional cases "
                                 "(default: the two classes after the target).")
    experiment.add_argument("--inversion-mode", choices=INVERSION_MODES,
                            default="batched",
                            help="Trigger-inversion engine for every scan in "
                                 "the experiment (see 'scan --help').")
    experiment.add_argument("--seed", type=int, default=0)
    experiment.add_argument("--workers", type=int, default=0,
                            help="Dispatch the (case, model) fleet across N "
                                 "worker processes; 0/1 runs serially.")
    experiment.add_argument("--repair-strategies", type=str, default=None,
                            help="Comma-separated repair strategies "
                                 f"({','.join(REPAIR_STRATEGIES)}); when "
                                 "set, run the detect->repair->verify sweep "
                                 "and print true ASR before/after per "
                                 "case x detector x strategy.")
    experiment.add_argument("--json", action="store_true", dest="as_json")
    return parser


def _parse_classes(text: Optional[str]) -> Optional[tuple]:
    """Parse a comma-separated class list CLI value (``None``/blank -> None)."""
    if text is None or not text.strip():
        return None
    return tuple(int(part) for part in text.split(",") if part.strip())


def _request_from_args(args: argparse.Namespace, checkpoint: str,
                       detector: str) -> ScanRequest:
    """Build one :class:`ScanRequest` from parsed scan-option flags."""
    return ScanRequest(
        checkpoint=checkpoint, detector=detector, model=args.model,
        dataset=args.dataset, image_size=args.image_size,
        classes=_parse_classes(args.classes), clean_budget=args.clean_budget,
        samples_per_class=args.samples_per_class, iterations=args.iterations,
        uap_passes=args.uap_passes, anomaly_threshold=args.anomaly_threshold,
        seed=args.seed, scenario=args.scenario,
        source_classes=_parse_classes(args.source_classes),
        inversion_mode=args.inversion_mode)


def _make_scheduler(args: argparse.Namespace) -> ScanScheduler:
    """Build the scheduler (and open the store) a command asked for."""
    store = None if args.no_store else open_store(args.store)
    telemetry = False if getattr(args, "no_telemetry", False) else None
    span_sink = (sidecar_path(args.store, SPANS_NAME)
                 if store is not None else None)
    return ScanScheduler(store=store, workers=args.workers,
                         telemetry=telemetry, span_sink=span_sink,
                         backend=getattr(args, "backend", None))


def _print_records(records: Sequence[ScanRecord], as_json: bool,
                   out=None) -> None:
    """Render records as a text table (or JSON with ``as_json``)."""
    out = out or sys.stdout
    if as_json:
        out.write(json.dumps([r.to_dict() | {"cache_hit": r.cache_hit}
                              for r in records], indent=2) + "\n")
        return
    from ..eval.reporting import format_scan_records
    out.write(format_scan_records(records) + "\n")


# ---------------------------------------------------------------------- #
# Subcommands
# ---------------------------------------------------------------------- #
def _print_triage(result, as_json: bool) -> None:
    """Render one routed-triage result (verdict, stages, cost ledger)."""
    if as_json:
        print(json.dumps(result.to_dict(), indent=2))
        return
    breakdown = result.cost_breakdown
    verdict = "BACKDOORED" if result.is_backdoored else "clean"
    print(f"triage[{result.strategy}] -> {verdict} "
          f"(total {breakdown['total_seconds']:.2f}s fresh compute)")
    for stage in breakdown["stages"]:
        cached = " (cache hit)" if stage["cache_hit"] else ""
        print(f"  ran     {stage['detector']:6s} {stage['verdict']:10s} "
              f"max-anomaly={stage['max_anomaly']:6.2f} "
              f"{stage['seconds']:.2f}s{cached}")
    for stage in breakdown["skipped"]:
        print(f"  skipped {stage['detector']:6s} -> {stage['reason']}")
    if breakdown.get("escalation_reason"):
        print(f"  escalation: {breakdown['escalation_reason']}")


def _cmd_scan(args: argparse.Namespace) -> int:
    """``scan``: one checkpoint, one detector, verdict to stdout.

    With ``--strategy`` the single-detector run becomes the routed triage
    plan (see :mod:`repro.service.routing`).
    """
    scheduler = _make_scheduler(args)
    if args.strategy:
        request = _request_from_args(args, args.checkpoint, "usb")
        result = route_scan(scheduler, request,
                            RoutingPolicy(strategy=args.strategy))
        _print_triage(result, as_json=args.as_json)
        return 0
    record = scheduler.scan_one(_request_from_args(args, args.checkpoint,
                                                   args.detector))
    if args.as_json:
        _print_records([record], as_json=True)
        return 0
    verdict = "BACKDOORED" if record.is_backdoored else "clean"
    source = "cache hit" if record.cache_hit else f"computed in {record.seconds:.1f}s"
    print(f"{args.checkpoint} [{record.detector}] -> {verdict} ({source})")
    print(f"  model={record.model} dataset={record.dataset} "
          f"fingerprint={record.fingerprint[:16]}...")
    detection = record.to_detection_result()
    if detection.pair_anomaly_indices:
        print(f"  scenario={args.scenario}: "
              f"{len(detection.pair_anomaly_indices)} (source->target) cell(s)")
        for pair in sorted(detection.per_pair_l1,
                           key=lambda p: (p[1], -1 if p[0] is None else p[0])):
            source, target = pair
            flag = "  <-- flagged" if pair in detection.flagged_pairs else ""
            print(f"  {'*' if source is None else source}->{target}: "
                  f"L1={detection.per_pair_l1[pair]:10.2f}  "
                  f"anomaly={detection.pair_anomaly_indices.get(pair, 0.0):6.2f}"
                  f"{flag}")
    else:
        for cls in sorted(detection.per_class_l1):
            flag = "  <-- flagged" if cls in record.flagged_classes else ""
            print(f"  class {cls}: L1={detection.per_class_l1[cls]:10.2f}  "
                  f"anomaly={detection.anomaly_indices.get(cls, 0.0):6.2f}{flag}")
    if not args.no_store:
        print(f"  store: {args.store} ({len(scheduler.store)} record(s); "
              f"hits={scheduler.cache_hits} misses={scheduler.cache_misses})")
    trace_id = (record.telemetry or {}).get("trace_id")
    if trace_id:
        print(f"  trace: {trace_id} "
              f"(python -m repro trace {trace_id} --store {args.store})")
    return 0


def _cmd_grid(args: argparse.Namespace) -> int:
    """``grid``: fan a checkpoint x detector matrix across the worker pool."""
    detectors = [d.strip() for d in args.detectors.split(",") if d.strip()]
    if not detectors:
        print("grid: no detectors given.", file=sys.stderr)
        return 2
    requests = [_request_from_args(args, checkpoint, detector)
                for checkpoint in args.checkpoints
                for detector in detectors]
    scheduler = _make_scheduler(args)
    records = scheduler.scan(requests)
    _print_records(records, as_json=args.as_json)
    if not args.as_json:
        print(f"{len(records)} scan(s); cache hits={scheduler.cache_hits} "
              f"misses={scheduler.cache_misses}; workers={max(args.workers, 1)}")
    return 0


def _repair_request_from_args(args: argparse.Namespace,
                              checkpoint: str) -> RepairRequest:
    """Build one :class:`RepairRequest` from parsed repair-option flags."""
    output = None
    if args.output_dir:
        stem = os.path.splitext(os.path.basename(checkpoint))[0]
        output = os.path.join(args.output_dir, f"{stem}.repaired.npz")
    return RepairRequest(
        scan=_request_from_args(args, checkpoint, args.detector),
        strategy=args.strategy,
        unlearn_epochs=args.unlearn_epochs,
        learning_rate=args.learning_rate,
        stamp_fraction=args.stamp_fraction,
        prune_fraction=args.prune_fraction,
        max_accuracy_drop=args.max_accuracy_drop / 100.0,
        rescan=not args.no_rescan,
        output=output)


def _cmd_repair(args: argparse.Namespace) -> int:
    """``repair``: detect -> repair -> verify one or more checkpoints."""
    requests = [_repair_request_from_args(args, checkpoint)
                for checkpoint in args.checkpoints]
    scheduler = _make_scheduler(args)
    records = run_repairs(scheduler, requests)
    if args.as_json:
        print(json.dumps([r.to_dict() | {"cache_hit": r.cache_hit}
                          for r in records], indent=2))
        return 0
    from ..eval.reporting import format_repair_records
    print(format_repair_records(records))
    for record in records:
        report = record.report
        detail = [f"acc {100 * record.accuracy_before:.1f} -> "
                  f"{100 * record.accuracy_after:.1f}"]
        flips = report.get("trigger_success_after") or {}
        if flips:
            before = report.get("trigger_success_before") or {}
            detail.append("flip " + ", ".join(
                f"{cell}: {before.get(cell, 0.0):.2f}->{rate:.2f}"
                for cell, rate in sorted(flips.items())))
        if record.repaired_checkpoint:
            detail.append(f"repaired -> {record.repaired_checkpoint}")
        elif report.get("rolled_back"):
            detail.append("guardrail tripped — weights rolled back")
        elif not record.repaired:
            detail.append("nothing flagged — no repair applied")
        print(f"  {record.checkpoint}: {'; '.join(detail)}")
    if not args.no_store:
        print(f"store: {args.store} ({len(scheduler.store)} record(s); "
              f"hits={scheduler.cache_hits} misses={scheduler.cache_misses})")
    return 0


def _load_stats(args: argparse.Namespace) -> Optional[dict]:
    """Read the daemon stats endpoint for ``report``, if one exists."""
    stats_path = args.stats or default_stats_path(args.store)
    if not os.path.exists(stats_path):
        return None
    with open(stats_path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    payload["_path"] = stats_path
    return payload


def _print_stats(stats: dict) -> None:
    """Render the daemon's metrics fields under the record table."""
    hits, misses = stats.get("cache_hits", 0), stats.get("cache_misses", 0)
    print(f"daemon stats ({stats.get('_path')}):")
    print(f"  scans served: {stats.get('scans_served', 0)}  "
          f"cache-hit ratio: {stats.get('cache_hit_ratio', 0.0):.2f} "
          f"({hits} hit(s) / {misses} miss(es))")
    print(f"  scan latency: p50={stats.get('latency_p50_s', 0.0):.2f}s "
          f"p95={stats.get('latency_p95_s', 0.0):.2f}s")
    print(f"  failures: {stats.get('failures', 0)}  "
          f"retries: {stats.get('retries', 0)}  "
          f"queue depth: {stats.get('queue_depth', 0)}  "
          f"checkpoints seen: {stats.get('checkpoints_seen', 0)}")
    if "activation_cache_hits" in stats:
        print(f"  activation cache: {stats.get('activation_cache_hits', 0)} "
              f"hit(s) / {stats.get('activation_cache_misses', 0)} miss(es) "
              f"(ratio {stats.get('activation_cache_hit_ratio', 0.0):.2f})")
    if stats.get("updated_at"):
        print(f"  updated: {stats['updated_at']}")


def _print_fleet(fleet: dict) -> None:
    """Render the fleet snapshot block of ``report`` (workers, leases, depth)."""
    print(f"fleet ({fleet.get('workers_live', 0)} live / "
          f"{fleet.get('workers_seen', 0)} seen worker(s)):")
    print(f"  leases: held={fleet.get('leases_held', 0)}  "
          f"expired={fleet.get('leases_expired_total', 0)}  "
          f"requeued={fleet.get('leases_requeued_total', 0)}")
    depth = fleet.get("queue_depth") or {}
    rendered = ", ".join(f"{tenant}={count}"
                         for tenant, count in sorted(depth.items()))
    print(f"  jobs: queued={fleet.get('jobs_queued', 0)}  "
          f"done={fleet.get('jobs_done', 0)}  "
          f"failed={fleet.get('jobs_failed', 0)}"
          + (f"  (per tenant: {rendered})" if rendered else ""))


def _cmd_report(args: argparse.Namespace) -> int:
    """``report``: render the store as tables, plus daemon stats if present.

    Scan and repair records are rendered as separate tables (they share the
    store but not a column layout).  Records are streamed shard by shard
    (:func:`~repro.service.store.stream_records`) rather than replayed into
    a store index first, so reporting on a large store is bounded by its
    largest shard, not its total size.
    """
    scans: List[ScanRecord] = []
    repairs: List[RepairRecord] = []
    detector = args.detector.lower() if args.detector else None
    for record in stream_records(args.store):
        if detector is not None and record.detector.lower() != detector:
            continue
        if isinstance(record, RepairRecord):
            repairs.append(record)
        elif isinstance(record, ScanRecord):
            scans.append(record)
    stats = _load_stats(args)
    fleet = fleet_snapshot(args.store)
    if args.as_json:
        scan_rows = [r.to_dict() for r in scans]
        clean_stats = ({k: v for k, v in stats.items() if k != "_path"}
                       if stats is not None else None)
        payload = {"records": scan_rows,
                   "repairs": [r.to_dict() for r in repairs],
                   "metrics": summarize_telemetry(scan_rows, clean_stats)}
        if clean_stats is not None:
            payload["stats"] = clean_stats
        if fleet is not None:
            payload["fleet"] = fleet
        print(json.dumps(payload, indent=2))
        return 0
    if not scans and not repairs:
        print(f"{args.store}: no records"
              + (f" for detector '{args.detector}'" if args.detector else "")
              + ".")
    if scans:
        _print_records(scans, as_json=False)
        backdoored = sum(1 for r in scans if r.is_backdoored)
        print(f"{len(scans)} record(s): {backdoored} backdoored, "
              f"{len(scans) - backdoored} clean.")
    if repairs:
        from ..eval.reporting import format_repair_records
        print(format_repair_records(repairs))
        succeeded = sum(1 for r in repairs if r.success)
        print(f"{len(repairs)} repair record(s): {succeeded} successful, "
              f"{len(repairs) - succeeded} not.")
    if stats is not None:
        _print_stats(stats)
    if fleet is not None:
        _print_fleet(fleet)
    return 0


def _cmd_watch(args: argparse.Namespace) -> int:
    """``watch``: run the drop-directory daemon (see :mod:`..service.daemon`)."""
    detectors = [d.strip() for d in args.detectors.split(",") if d.strip()]
    if not detectors:
        print("watch: no detectors given.", file=sys.stderr)
        return 2
    for detector in detectors:
        if detector.lower() not in KNOWN_DETECTORS:
            print(f"watch: unknown detector '{detector}'. "
                  f"Available: {', '.join(KNOWN_DETECTORS)}", file=sys.stderr)
            return 2
    request_options = dict(
        model=args.model, dataset=args.dataset, image_size=args.image_size,
        classes=_parse_classes(args.classes), clean_budget=args.clean_budget,
        samples_per_class=args.samples_per_class, iterations=args.iterations,
        uap_passes=args.uap_passes, anomaly_threshold=args.anomaly_threshold,
        seed=args.seed, scenario=args.scenario,
        source_classes=_parse_classes(args.source_classes),
        inversion_mode=args.inversion_mode)
    config = DaemonConfig(
        watch_dir=args.directory, store_path=args.store, detectors=detectors,
        poll_interval=args.poll_interval, job_timeout=args.job_timeout,
        max_retries=args.retries, settle_polls=args.settle_polls,
        stats_path=args.stats, request_options=request_options,
        auto_repair=args.auto_repair,
        repair_options={"strategy": args.repair_strategy},
        telemetry=False if args.no_telemetry else None,
        backend=args.backend)
    daemon = WatchDaemon(config)
    print(f"watching {args.directory} -> store {args.store} "
          f"(detectors: {', '.join(detectors)}; "
          f"auto-repair: {'on' if args.auto_repair else 'off'}; "
          f"stats: {daemon.stats_path})")
    stats = daemon.run(max_iterations=args.max_iterations or None)
    print(f"served {stats['scans_served']} scan(s), "
          f"hit ratio {stats['cache_hit_ratio']:.2f}, "
          f"{stats['repairs_completed']} repair(s), "
          f"{stats['failures']} failure(s).")
    return 0


def _cmd_store(args: argparse.Namespace) -> int:
    """``store compact`` / ``store merge``: in-place store maintenance."""
    store = open_store(args.store)
    if args.store_command == "compact":
        result = store.compact()
        print(f"{args.store}: compacted "
              f"{result.get('shards', 1)} shard(s)/file(s): "
              f"{result['lines_before']} line(s) -> "
              f"{result['records_after']} record(s) "
              f"({result['dropped']} superseded line(s) dropped).")
        return 0
    result = store.merge(args.source)
    print(f"{args.store}: merged {result['merged']} record(s) from "
          f"{args.source} ({result['skipped']} already-present key(s) "
          "skipped).")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    """``trace``: list recorded traces, or render one trace's span tree."""
    spans_path = sidecar_path(args.store, SPANS_NAME)
    if args.trace_id:
        spans = read_spans(spans_path, trace_id=args.trace_id)
        if not spans:
            print(f"{spans_path}: no spans recorded for trace "
                  f"'{args.trace_id}'.", file=sys.stderr)
            return 1
        print(render_trace(spans, args.trace_id))
        return 0
    spans = read_spans(spans_path)
    if not spans:
        print(f"{spans_path}: no spans recorded (telemetry off, or no "
              "scans ran yet).")
        return 0
    print(format_trace_summaries(summarize_traces(spans)))
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    """``metrics``: Prometheus text exposition of the store + daemon stats."""
    store = open_store(args.store)
    stats = _load_stats(args)
    if stats is not None:
        stats = {k: v for k, v in stats.items() if k != "_path"}
    fleet = fleet_snapshot(args.store)
    if fleet is not None:
        stats = dict(stats or {})
        stats["fleet"] = fleet
    rows = [record.to_dict() for record in store.scan_records()]
    text = build_service_registry(rows, stats).render()
    if args.output:
        atomic_write(args.output, text)
        print(f"wrote {len(text.splitlines())} sample/header line(s) to "
              f"{args.output}")
        return 0
    sys.stdout.write(text)
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """``serve``: run the HTTP scan/repair API until interrupted."""
    from .api import ApiServer
    server = ApiServer(args.store, host=args.host, port=args.port,
                       workers=args.workers, job_retries=args.retries,
                       telemetry=False if args.no_telemetry else None,
                       backend=args.backend)
    print(f"serving http://{server.host}:{server.port} "
          f"(store: {args.store}; backend: {server.scheduler.backend.name}; "
          f"retries: {args.retries}) — Ctrl-C to drain and exit")
    server.serve_forever()
    return 0


def _cmd_worker(args: argparse.Namespace) -> int:
    """``worker``: serve a store's fleet queue until stopped.

    Any number of workers (on any host sharing the store's filesystem) can
    drain one queue; lease-based ownership guarantees each job runs under
    exactly one live worker at a time, and a worker that dies mid-job
    forfeits its lease for any surviving reader to requeue.
    """
    print(f"worker draining fleet queue of {args.store} "
          f"(lease: {args.lease_seconds:.0f}s) — Ctrl-C to exit")
    try:
        executed = run_worker(
            args.store, worker_id=args.worker_id,
            lease_seconds=args.lease_seconds,
            poll_interval=args.poll_interval,
            max_jobs=args.max_jobs or None,
            idle_timeout=args.idle_timeout or None)
    except KeyboardInterrupt:
        print("worker interrupted; lease(s) will expire and requeue.")
        return 0
    print(f"executed {executed} job(s).")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    """``experiment``: train + scan one paper table along the scenario axis.

    With ``--repair-strategies`` the same table runs through the
    detect -> repair -> verify sweep instead, printing true ASR
    before/after per case x detector x strategy.
    """
    from ..eval.experiments import (
        SCALES,
        TABLE_CONFIGS,
        run_experiment,
        run_repair_sweep,
        scenario_grid_config,
    )
    from ..eval.reporting import (
        detection_table_columns,
        format_table,
        repair_sweep_columns,
    )

    if args.table not in TABLE_CONFIGS:
        print(f"experiment: unknown table '{args.table}'. "
              f"Available: {sorted(TABLE_CONFIGS)}", file=sys.stderr)
        return 2
    if args.scale not in SCALES:
        print(f"experiment: unknown scale '{args.scale}'. "
              f"Available: {sorted(SCALES)}", file=sys.stderr)
        return 2
    scenarios = [s.strip() for s in args.scenarios.split(",") if s.strip()]
    if not scenarios:
        print("experiment: no scenarios given.", file=sys.stderr)
        return 2
    config = TABLE_CONFIGS[args.table](args.scale)
    if args.detectors:
        detectors = tuple(d.strip() for d in args.detectors.split(",")
                          if d.strip())
        config = dataclasses.replace(config, detectors=detectors)
    cases = ([c.strip() for c in args.cases.split(",") if c.strip()]
             if args.cases else None)
    config = scenario_grid_config(
        config, scenarios, cases=cases,
        source_classes=_parse_classes(args.source_classes))
    if args.inversion_mode != config.inversion_mode:
        config = dataclasses.replace(config,
                                     inversion_mode=args.inversion_mode)
    if args.repair_strategies:
        strategies = [s.strip() for s in args.repair_strategies.split(",")
                      if s.strip()]
        for strategy in strategies:
            if strategy not in REPAIR_STRATEGIES:
                print(f"experiment: unknown repair strategy '{strategy}'. "
                      f"Available: {', '.join(REPAIR_STRATEGIES)}",
                      file=sys.stderr)
                return 2
        if args.workers and args.workers > 1:
            print("experiment: --repair-strategies runs the sweep serially; "
                  f"--workers {args.workers} is ignored.", file=sys.stderr)
        rows = run_repair_sweep(config, seed=args.seed, strategies=strategies)
        if args.as_json:
            print(json.dumps(rows, indent=2))
            return 0
        print(format_table(rows, columns=repair_sweep_columns,
                           title=f"{config.name} [{args.scale}] repair sweep "
                                 f"({','.join(strategies)})"))
        return 0
    scheduler = (ScanScheduler(workers=args.workers)
                 if args.workers and args.workers > 1 else None)
    result = run_experiment(config, seed=args.seed, scheduler=scheduler)
    rows = result.rows()
    if args.as_json:
        print(json.dumps(rows, indent=2))
        return 0
    print(format_table(rows, columns=detection_table_columns,
                       title=f"{config.name} [{args.scale}] x "
                             f"scenarios({','.join(scenarios)})"))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point: parse ``argv`` and dispatch to the subcommand.

    Args:
        argv: Argument list (default: ``sys.argv[1:]``).

    Returns:
        Process exit code (0 success, 1 runtime error, 2 usage error).
    """
    args = build_parser().parse_args(argv)
    if args.log_level:
        set_log_level(args.log_level)
    handlers = {"scan": _cmd_scan, "grid": _cmd_grid, "repair": _cmd_repair,
                "report": _cmd_report, "experiment": _cmd_experiment,
                "watch": _cmd_watch, "store": _cmd_store,
                "trace": _cmd_trace, "metrics": _cmd_metrics,
                "serve": _cmd_serve, "worker": _cmd_worker}
    try:
        return handlers[args.command](args)
    except (OSError, KeyError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
