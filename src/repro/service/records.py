"""Request/record dataclasses exchanged by the scanning service.

A :class:`ScanRequest` fully describes one scan job — which checkpoint,
which detector, and every budget knob that affects the outcome — so it can
be shipped to a worker process, digested into a cache key, and replayed
byte-for-byte later.  A :class:`ScanRecord` is the persisted outcome: the
verdict plus the compact detection summary
(:meth:`repro.core.detection.DetectionResult.to_compact_dict`), JSON-safe by
construction so the result store can keep it as one JSONL line.

Repair jobs (``python -m repro repair``) persist a :class:`RepairRecord`
into the same store: its lines carry a ``"record": "repair"`` marker so
:func:`record_from_dict` — the store's line decoder — can tell the two
apart (scan lines predate the marker and decode as scans by default).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from ..attacks.base import SCENARIO_ALL_TO_ONE, SCENARIOS
from ..core.detection import INVERSION_MODES, DetectionResult

__all__ = ["ScanRequest", "ScanRecord", "RepairRecord", "record_from_dict"]

#: Detectors the service knows how to build (see ``scheduler.build_detector``).
KNOWN_DETECTORS = ("usb", "nc", "tabor")


@dataclass(frozen=True)
class ScanRequest:
    """One scan job: a checkpoint, a detector, and the budgets that shape it.

    ``model`` / ``dataset`` / ``image_size`` may be omitted when the
    checkpoint carries metadata (written by ``repro.nn.save_model(...,
    metadata=...)``); explicit values always win over metadata.
    """

    checkpoint: str
    detector: str = "usb"
    model: Optional[str] = None
    dataset: Optional[str] = None
    image_size: Optional[int] = None
    #: Candidate target classes to scan; ``None`` scans every class.
    classes: Optional[Tuple[int, ...]] = None
    #: Size of the clean set X handed to the detector (paper: 300 images).
    clean_budget: int = 60
    #: Per-class sample count when synthesizing the clean pool.
    samples_per_class: int = 30
    #: Alg. 2 trigger-optimization iterations.
    iterations: int = 40
    #: Alg. 1 UAP sweeps (USB only).
    uap_passes: int = 1
    anomaly_threshold: float = 2.0
    seed: int = 0
    #: Scenario axis: non-all-to-one scans sweep the (source, target) pair
    #: grid (clean data restricted per source class).  Part of the cache key.
    scenario: str = SCENARIO_ALL_TO_ONE
    #: Suspected source classes for ``source_conditional`` scans; ``None``
    #: sweeps every candidate class as a source.
    source_classes: Optional[Tuple[int, ...]] = None
    #: Trigger-inversion engine: ``"sequential"`` (per-class loop),
    #: ``"batched"`` (stacked per-model optimization, the default), or
    #: ``"mega"`` (cross-model work-item pool with the budget cascade).
    #: Part of the cache key whenever it deviates from ``"batched"``.
    inversion_mode: str = "batched"

    def __post_init__(self) -> None:
        if self.detector.lower() not in KNOWN_DETECTORS:
            raise ValueError(f"Unknown detector '{self.detector}'. "
                             f"Available: {', '.join(KNOWN_DETECTORS)}")
        if self.scenario not in SCENARIOS:
            raise ValueError(f"Unknown scenario '{self.scenario}'. "
                             f"Available: {', '.join(SCENARIOS)}")
        if self.inversion_mode not in INVERSION_MODES:
            raise ValueError(
                f"Unknown inversion mode '{self.inversion_mode}'. "
                f"Available: {', '.join(INVERSION_MODES)}")
        if self.classes is not None:
            object.__setattr__(self, "classes",
                               tuple(int(c) for c in self.classes))
        if self.source_classes is not None:
            object.__setattr__(self, "source_classes",
                               tuple(int(c) for c in self.source_classes))

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe payload (class tuples become lists) for shipping/logging."""
        payload = dataclasses.asdict(self)
        for key in ("classes", "source_classes"):
            if payload[key] is not None:
                payload[key] = list(payload[key])
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "ScanRequest":
        """Rebuild a request from :meth:`to_dict` (unknown keys ignored)."""
        data = dict(payload)
        for key in ("classes", "source_classes"):
            if data.get(key) is not None:
                data[key] = tuple(int(c) for c in data[key])
        known = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in known})


@dataclass
class ScanRecord:
    """Persisted outcome of one scan, addressable by its cache ``key``."""

    key: str
    fingerprint: str
    config_digest: str
    checkpoint: str
    model: str
    dataset: str
    detector: str
    is_backdoored: bool
    flagged_classes: Tuple[int, ...]
    suspect_class: Optional[int]
    seconds: float
    #: Compact detection payload (``DetectionResult.to_compact_dict``).
    detection: Dict[str, Any] = field(default_factory=dict)
    #: Free-form numeric annotations (fleet runs store accuracy/ASR here).
    extra: Dict[str, float] = field(default_factory=dict)
    #: Telemetry block: trace id, per-phase profiler breakdown, iteration
    #: counts, and (on mega runs) the pool/activation-cache stats.  Persisted
    #: so ``report`` / ``repro metrics`` can aggregate offline.
    telemetry: Dict[str, Any] = field(default_factory=dict)
    created_at: str = ""
    worker_pid: int = 0
    #: Transient: True when this record was served from the store instead of
    #: being recomputed.  Always persisted as False.
    cache_hit: bool = False
    #: Transient transport for finished worker-side trace spans: serialized
    #: through :meth:`to_dict` so they survive the pipe/pickle hop back to
    #: the parent, which pops them into the span sink before ``store.add``
    #: (the store additionally strips them from persisted lines).
    spans: list = field(default_factory=list)

    @classmethod
    def from_detection(cls, *, key: str, fingerprint: str, config_digest: str,
                       checkpoint: str, model: str, dataset: str,
                       detection: DetectionResult, created_at: str = "",
                       worker_pid: int = 0,
                       extra: Optional[Dict[str, float]] = None,
                       telemetry: Optional[Dict[str, Any]] = None
                       ) -> "ScanRecord":
        """Build the persisted record for a freshly computed detection."""
        return cls(
            key=key,
            fingerprint=fingerprint,
            config_digest=config_digest,
            checkpoint=checkpoint,
            model=model,
            dataset=dataset,
            detector=detection.detector,
            is_backdoored=bool(detection.is_backdoored),
            flagged_classes=tuple(int(c) for c in detection.flagged_classes),
            suspect_class=detection.suspect_class,
            seconds=float(detection.seconds_total),
            detection=detection.to_compact_dict(),
            extra=dict(extra or {}),
            telemetry=dict(telemetry or {}),
            created_at=created_at,
            worker_pid=worker_pid,
        )

    def pop_spans(self) -> list:
        """Detach and return the transient worker-side span dicts."""
        spans, self.spans = self.spans, []
        return spans

    def to_detection_result(self) -> DetectionResult:
        """Rehydrate the (compact) :class:`DetectionResult` for this record."""
        return DetectionResult.from_compact_dict(self.detection)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe payload: what the result store persists as one line."""
        payload = dataclasses.asdict(self)
        payload["flagged_classes"] = [int(c) for c in self.flagged_classes]
        payload["cache_hit"] = False  # transient — never persisted as hit
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "ScanRecord":
        """Rebuild a record from :meth:`to_dict` (unknown keys ignored)."""
        data = dict(payload)
        data["flagged_classes"] = tuple(int(c) for c in data.get("flagged_classes", ()))
        known = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in known})

    def as_row(self) -> Dict[str, Any]:
        """Table row used by the CLI ``grid`` / ``report`` views."""
        return {
            "checkpoint": self.checkpoint,
            "model": self.model,
            "dataset": self.dataset,
            "method": self.detector,
            "verdict": "BACKDOORED" if self.is_backdoored else "clean",
            "flagged": ",".join(str(c) for c in self.flagged_classes) or "-",
            "suspect": self.suspect_class,
            "seconds": round(self.seconds, 2),
            "cached": "hit" if self.cache_hit else "miss",
        }


@dataclass
class RepairRecord:
    """Persisted outcome of one detect -> repair -> verify job.

    Shares the result store with :class:`ScanRecord` (same ``key``-addressed
    cache semantics, distinguished on disk by the ``"record": "repair"``
    marker).  ``report`` embeds the full
    :meth:`repro.mitigation.RepairReport.to_dict` payload; the headline
    fields are mirrored at the top level for tables and quick filters.
    """

    key: str
    #: Fingerprint of the *pre-repair* weights (the cache-key anchor).
    fingerprint: str
    config_digest: str
    checkpoint: str
    model: str
    dataset: str
    detector: str
    strategy: str
    #: Cache key of the underlying scan configuration (provenance link).
    scan_key: str = ""
    #: Pre-repair verdict of the repair job's own detection pass.
    was_backdoored: bool = False
    #: True when a repair was applied (something was flagged).
    repaired: bool = False
    #: Headline verdict: backdoor neutralized within the guardrail.
    success: bool = False
    accuracy_before: float = 0.0
    accuracy_after: float = 0.0
    #: Where the repaired weights were written (``None`` when nothing was
    #: repaired or the guardrail rolled the repair back).
    repaired_checkpoint: Optional[str] = None
    #: Fingerprint of the repaired weights (scan-cacheable as a new model).
    repaired_fingerprint: Optional[str] = None
    #: Full compact repair report (``RepairReport.to_dict()``).
    report: Dict[str, Any] = field(default_factory=dict)
    seconds: float = 0.0
    #: Telemetry block mirroring :attr:`ScanRecord.telemetry`.
    telemetry: Dict[str, Any] = field(default_factory=dict)
    created_at: str = ""
    worker_pid: int = 0
    #: Transient: served from the store instead of recomputed.
    cache_hit: bool = False
    #: Transient worker-side trace spans (see :attr:`ScanRecord.spans`).
    spans: list = field(default_factory=list)

    #: Marker value stored under the ``"record"`` key of every line.
    RECORD_TYPE = "repair"

    def pop_spans(self) -> list:
        """Detach and return the transient worker-side span dicts."""
        spans, self.spans = self.spans, []
        return spans

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe payload: one store line, ``"record": "repair"``-tagged."""
        payload = dataclasses.asdict(self)
        payload["record"] = self.RECORD_TYPE
        payload["cache_hit"] = False  # transient — never persisted as hit
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "RepairRecord":
        """Rebuild a record from :meth:`to_dict` (unknown keys ignored)."""
        data = dict(payload)
        known = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in known})

    def as_row(self) -> Dict[str, Any]:
        """Table row used by the CLI ``repair`` / ``report`` views."""
        verdict_after = self.report.get("verdict_after")
        return {
            "checkpoint": self.checkpoint,
            "method": self.detector,
            "strategy": self.strategy,
            "before": "BACKDOORED" if self.was_backdoored else "clean",
            "after": ("-" if verdict_after is None
                      else "BACKDOORED" if verdict_after else "clean"),
            "acc_before": round(100 * self.accuracy_before, 2),
            "acc_after": round(100 * self.accuracy_after, 2),
            "repaired": "yes" if self.repaired else "no",
            "success": "yes" if self.success else "NO",
            "seconds": round(self.seconds, 2),
            "cached": "hit" if self.cache_hit else "miss",
        }


def record_from_dict(payload: Dict[str, Any]):
    """Decode one store line into its record type.

    Lines tagged ``"record": "repair"`` become :class:`RepairRecord`;
    everything else (including pre-repair stores with no marker) decodes as
    :class:`ScanRecord`.
    """
    if payload.get("record") == RepairRecord.RECORD_TYPE:
        return RepairRecord.from_dict(payload)
    return ScanRecord.from_dict(payload)
