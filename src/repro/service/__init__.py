"""Model-scanning service: fingerprints, cached results, parallel scheduling.

The service layer turns the in-process detectors into throughput:

* :mod:`repro.service.fingerprint` — content-addressed SHA-256 fingerprints
  of state dicts plus detector-config digests;
* :mod:`repro.service.records` — :class:`ScanRequest` / :class:`ScanRecord`,
  the picklable/JSON-safe units of work and result;
* :mod:`repro.service.locks` — advisory per-shard file locks and atomic
  file replacement, the multi-writer primitives;
* :mod:`repro.service.store` — result stores: the legacy single-file JSONL
  :class:`ResultStore` and the sharded, concurrent-writer
  :class:`ShardedResultStore` (pick via :func:`open_store`), both making
  repeat scans cache hits and both supporting ``compact`` / ``merge``;
* :mod:`repro.service.planning` — the backend-independent planning core:
  the prioritized :class:`JobQueue`, :class:`ServiceMetrics`, and the
  shared cache-lookup planner every execution path reuses;
* :mod:`repro.service.backends` — :class:`ExecutionBackend` and its
  ``inline`` / ``pool`` implementations (pick via :func:`create_backend`);
* :mod:`repro.service.fleet` — the lease-based distributed worker fleet:
  a store-adjacent shared job queue (:class:`FleetQueue`), the
  ``python -m repro worker`` process (:class:`FleetWorker`), and the
  ``fleet`` execution backend (:class:`FleetBackend`);
* :mod:`repro.service.scheduler` — :class:`ScanScheduler`, which resolves
  cache keys in the parent and hands misses to its execution backend
  (process pool by default) with per-job timeouts and bounded retries,
  accumulating :class:`ServiceMetrics`;
* :mod:`repro.service.repair` — cacheable detect -> repair -> verify jobs
  (:class:`RepairRequest` / :func:`run_repairs`) wrapping
  :mod:`repro.mitigation`, with atomically written repaired checkpoints and
  :class:`RepairRecord` persistence in the shared store;
* :mod:`repro.service.daemon` — :class:`WatchDaemon`, the long-running
  ``python -m repro watch`` loop over a checkpoint drop directory with a
  JSON stats endpoint and an opt-in auto-repair mode;
* :mod:`repro.service.routing` — strategy-routed triage
  (:class:`RoutingPolicy` / :func:`route_scan`): ``fastest`` /
  ``cheapest`` / ``thorough`` detector escalation plans with per-request
  cost breakdowns;
* :mod:`repro.service.api` — :class:`ApiServer`, the
  ``python -m repro serve`` HTTP front end (submit/poll/result/traces/
  metrics endpoints over the shared queue, scheduler, and store);
* :mod:`repro.service.cli` — the ``python -m repro`` command line
  (``scan`` / ``grid`` / ``repair`` / ``report`` / ``experiment`` /
  ``watch`` / ``serve`` / ``store compact`` / ``store merge``).
"""

from .api import ApiJob, ApiServer

from .backends import (
    BACKEND_NAMES,
    ExecutionBackend,
    InlineBackend,
    PoolBackend,
    create_backend,
)
from .daemon import ChildBackend, CheckpointWatcher, DaemonConfig, WatchDaemon
from .fleet import (
    FleetBackend,
    FleetQueue,
    FleetWorker,
    LeaseLostError,
    fleet_snapshot,
    run_worker,
)
from .fingerprint import (
    digest_config,
    fingerprint_checkpoint,
    fingerprint_model,
    fingerprint_state_dict,
    scan_key,
)
from .locks import FileLock, LockTimeout, atomic_write
from .records import RepairRecord, ScanRecord, ScanRequest, record_from_dict
from .routing import (
    STRATEGIES,
    RoutingPolicy,
    TriageResult,
    escalation_reason,
    record_max_anomaly,
    route_scan,
)
from .repair import (
    RepairRequest,
    ResolvedRepair,
    atomic_save_model,
    execute_repair,
    resolve_repair,
    run_repairs,
)
from .scheduler import (
    JobQueue,
    JobTimeoutError,
    QueuedJob,
    ResolvedScan,
    ScanScheduler,
    ServiceMetrics,
    execute_resolved,
    execute_scan,
    resolve_request,
)
from .store import ResultStore, ShardedResultStore, open_store, stream_records

__all__ = [
    "BACKEND_NAMES",
    "ExecutionBackend",
    "InlineBackend",
    "PoolBackend",
    "ChildBackend",
    "FleetBackend",
    "FleetQueue",
    "FleetWorker",
    "LeaseLostError",
    "create_backend",
    "fleet_snapshot",
    "run_worker",
    "stream_records",
    "digest_config",
    "fingerprint_checkpoint",
    "fingerprint_model",
    "fingerprint_state_dict",
    "scan_key",
    "ScanRecord",
    "ScanRequest",
    "RepairRecord",
    "RepairRequest",
    "ResolvedRepair",
    "record_from_dict",
    "resolve_repair",
    "execute_repair",
    "run_repairs",
    "atomic_save_model",
    "ResolvedScan",
    "ScanScheduler",
    "ServiceMetrics",
    "JobQueue",
    "JobTimeoutError",
    "QueuedJob",
    "execute_resolved",
    "execute_scan",
    "resolve_request",
    "ResultStore",
    "ShardedResultStore",
    "open_store",
    "FileLock",
    "LockTimeout",
    "atomic_write",
    "CheckpointWatcher",
    "DaemonConfig",
    "WatchDaemon",
    "STRATEGIES",
    "RoutingPolicy",
    "TriageResult",
    "route_scan",
    "record_max_anomaly",
    "escalation_reason",
    "ApiJob",
    "ApiServer",
]
