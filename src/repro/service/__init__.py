"""Model-scanning service: fingerprints, cached results, parallel scheduling.

The service layer turns the in-process detectors into throughput:

* :mod:`repro.service.fingerprint` — content-addressed SHA-256 fingerprints
  of state dicts plus detector-config digests;
* :mod:`repro.service.records` — :class:`ScanRequest` / :class:`ScanRecord`,
  the picklable/JSON-safe units of work and result;
* :mod:`repro.service.store` — an append-only JSONL result store with an
  in-memory index, making repeat scans cache hits;
* :mod:`repro.service.scheduler` — :class:`ScanScheduler`, which resolves
  cache keys in the parent and fans misses across a process pool (with a
  serial inline fallback);
* :mod:`repro.service.cli` — the ``python -m repro`` command line
  (``scan`` / ``grid`` / ``report``).
"""

from .fingerprint import (
    digest_config,
    fingerprint_checkpoint,
    fingerprint_model,
    fingerprint_state_dict,
    scan_key,
)
from .records import ScanRecord, ScanRequest
from .scheduler import (
    ResolvedScan,
    ScanScheduler,
    execute_resolved,
    execute_scan,
    resolve_request,
)
from .store import ResultStore

__all__ = [
    "digest_config",
    "fingerprint_checkpoint",
    "fingerprint_model",
    "fingerprint_state_dict",
    "scan_key",
    "ScanRecord",
    "ScanRequest",
    "ResolvedScan",
    "ScanScheduler",
    "execute_resolved",
    "execute_scan",
    "resolve_request",
    "ResultStore",
]
