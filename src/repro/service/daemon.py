"""Watch daemon: a long-running vetting loop over a checkpoint drop directory.

``python -m repro watch <dir>`` turns the scanning service into a service
proper: the daemon polls a drop directory for new or changed ``.npz``
checkpoints, enqueues one scan per (checkpoint, detector) on the shared
prioritized :class:`~repro.service.scheduler.JobQueue`, and drains the queue
with per-job wall-clock timeouts and bounded retries.  Verdicts land in the
(usually sharded) result store — so any number of daemons and ad-hoc
``python -m repro scan`` invocations can share one store — and a JSON stats
endpoint file (scans served, cache-hit ratio, p50/p95 scan latency, failure
and retry counts) is rewritten atomically after every loop iteration for
``python -m repro report`` and external monitors to consume.

Unlike the pool path of :meth:`ScanScheduler.run_jobs`, the daemon executes
each scan in a dedicated child process it can *kill*: a hung scan is
terminated at its deadline, counted, and retried up to the configured budget,
and the loop keeps serving the rest of the queue.

A checkpoint is only enqueued once its (mtime, size) signature has stayed
stable for ``settle_polls`` consecutive polls, so half-copied files are never
scanned; rewriting a checkpoint re-triggers a scan (a changed file changes
its fingerprint, so the store treats it as a new model).
"""

from __future__ import annotations

import fnmatch
import json
import multiprocessing
import os
import time
from dataclasses import dataclass, field, replace as dataclass_replace
from datetime import datetime, timezone
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..obs.metrics import build_service_registry
from ..obs.trace import TRACER, new_trace_id
from ..utils.logging import get_logger
from .backends import ExecutionBackend, create_backend
from .locks import atomic_write
from .planning import ServiceMetrics
from .records import RepairRecord, ScanRecord, ScanRequest, record_from_dict
from .repair import RepairRequest, execute_repair, resolve_repair
from .scheduler import (
    JobQueue,
    JobTimeoutError,
    QueuedJob,
    ScanScheduler,
    execute_resolved,
    resolve_request,
)
from .store import METRICS_NAME, SPANS_NAME, STATS_NAME, open_store, sidecar_path

__all__ = ["CheckpointWatcher", "ChildBackend", "DaemonConfig", "WatchDaemon",
           "ScanJob", "RepairJob", "default_stats_path", "run_scan_in_child"]

_LOG = get_logger("repro.service.daemon")

#: Version tag written into the stats payload so consumers can evolve.
STATS_FORMAT = 1


def default_stats_path(store_path: str) -> str:
    """Where the daemon publishes stats for a given store path.

    Sharded stores keep ``stats.json`` inside the store directory; a legacy
    single-file store gets a ``<store>.stats.json`` sibling.
    """
    text = os.fspath(store_path)
    if os.path.isfile(text):  # legacy file, however it is named
        return text + ".stats.json"
    if os.path.isdir(text) or os.path.splitext(text)[1] == "":
        return os.path.join(text, STATS_NAME)
    return text + ".stats.json"


#: File-name patterns the watcher skips by default: the repair pipeline's
#: own outputs (see :func:`repro.service.repair.default_repair_output`).
#: Without this an auto-repair daemon would re-ingest every repaired
#: checkpoint it writes into the drop directory — and, whenever a repaired
#: model is flagged again, loop repairing its own outputs forever.
DEFAULT_IGNORE_PATTERNS = ("*.repaired-*.npz",)


class CheckpointWatcher:
    """Polls a directory for new or changed checkpoint files.

    Args:
        directory: Drop directory to watch (non-recursive).
        patterns: ``fnmatch`` patterns a file name must match.
        ignore_patterns: Patterns to skip even when ``patterns`` match
            (default: the repair pipeline's ``*.repaired-*.npz`` outputs).
        settle_polls: Consecutive polls a file's (mtime, size) signature must
            stay unchanged before it is reported — protects against scanning
            half-copied checkpoints.  ``0`` reports files immediately.

    Each :meth:`poll` returns the paths that became *ready* since the last
    report: brand-new files and files whose content signature changed (which
    re-arms them).
    """

    def __init__(self, directory: str, patterns: Sequence[str] = ("*.npz",),
                 settle_polls: int = 1,
                 ignore_patterns: Sequence[str] = DEFAULT_IGNORE_PATTERNS
                 ) -> None:
        self.directory = os.fspath(directory)
        self.patterns = tuple(patterns)
        self.ignore_patterns = tuple(ignore_patterns)
        self.settle_polls = int(settle_polls)
        #: path -> (signature, polls the signature has been stable for).
        self._seen: Dict[str, Tuple[Tuple[int, int], int]] = {}
        #: path -> signature last reported to the caller.
        self._reported: Dict[str, Tuple[int, int]] = {}

    def _matches(self, name: str) -> bool:
        if any(fnmatch.fnmatch(name, pattern)
               for pattern in self.ignore_patterns):
            return False
        return any(fnmatch.fnmatch(name, pattern) for pattern in self.patterns)

    def poll(self) -> List[str]:
        """One polling pass; returns newly ready checkpoint paths (sorted)."""
        ready: List[str] = []
        try:
            names = sorted(os.listdir(self.directory))
        except FileNotFoundError:
            return ready
        live = set()
        for name in names:
            if not self._matches(name):
                continue
            path = os.path.join(self.directory, name)
            try:
                stat = os.stat(path)
            except OSError:
                continue
            live.add(path)
            signature = (stat.st_mtime_ns, stat.st_size)
            previous = self._seen.get(path)
            if previous is None or previous[0] != signature:
                stable = 0
            else:
                stable = previous[1] + 1
            self._seen[path] = (signature, stable)
            if stable >= self.settle_polls and self._reported.get(path) != signature:
                self._reported[path] = signature
                ready.append(path)
        # Forget deleted files so a re-drop of the same name re-triggers.
        for path in list(self._seen):
            if path not in live:
                self._seen.pop(path, None)
                self._reported.pop(path, None)
        return ready


@dataclass(frozen=True)
class ScanJob:
    """One queued daemon job: scan ``checkpoint`` with ``detector``."""

    checkpoint: str
    detector: str


@dataclass(frozen=True)
class RepairJob:
    """One queued auto-repair job: repair ``checkpoint`` flagged by ``detector``."""

    checkpoint: str
    detector: str


@dataclass
class DaemonConfig:
    """Everything ``python -m repro watch`` configures.

    Args:
        watch_dir: Drop directory to poll for checkpoints.
        store_path: Result store (any :func:`repro.service.open_store`
            layout; an extension-less path creates a sharded store).
        detectors: Detectors run against every checkpoint.
        poll_interval: Seconds between directory polls.
        job_timeout: Wall-clock budget per scan; the child process running a
            scan is killed at the deadline.  ``None`` disables the limit.
        max_retries: Bounded retry budget per job after a failure or timeout.
        settle_polls: See :class:`CheckpointWatcher`.
        patterns: File-name patterns treated as checkpoints.
        stats_path: Stats endpoint file (default: derived from the store via
            :func:`default_stats_path`).
        request_options: Extra :class:`~repro.service.records.ScanRequest`
            fields applied to every job (scan budgets, classes, scenario...).
        scan_fn: Module-level callable mapping a resolved scan to a
            :class:`~repro.service.records.ScanRecord`; overridable for
            tests (must pickle, since it crosses a process boundary).
        auto_repair: When True, every checkpoint a scan flags as backdoored
            is queued for a detect -> repair -> verify job (behind the
            remaining scans), with the repaired checkpoint written next to
            the original and a :class:`~repro.service.records.RepairRecord`
            persisted to the store.
        repair_options: Extra :class:`~repro.service.repair.RepairRequest`
            fields for auto-repair jobs (strategy, budgets, guardrail...).
        repair_fn: Module-level callable mapping a resolved repair to a
            :class:`~repro.service.records.RepairRecord`; overridable for
            tests.
        telemetry: Record trace spans (``spans.jsonl`` beside the store) and
            export ``metrics.prom`` each cycle.  ``None`` follows the
            ``REPRO_TELEMETRY`` environment switch.
        backend: Execution backend for queued jobs: ``None``/``"child"``
            keeps the daemon's killable child processes (the historical
            behavior), ``"fleet"`` hands jobs to the store-adjacent worker
            fleet (see :mod:`repro.service.fleet`), and ``"inline"`` runs
            them in the daemon process (tests; timeouts unenforceable).
    """

    watch_dir: str
    store_path: str
    detectors: Sequence[str] = ("usb",)
    poll_interval: float = 2.0
    job_timeout: Optional[float] = None
    max_retries: int = 1
    settle_polls: int = 1
    patterns: Sequence[str] = ("*.npz",)
    stats_path: Optional[str] = None
    request_options: Dict[str, Any] = field(default_factory=dict)
    scan_fn: Callable[..., ScanRecord] = execute_resolved
    auto_repair: bool = False
    repair_options: Dict[str, Any] = field(default_factory=dict)
    repair_fn: Callable[..., RepairRecord] = execute_repair
    telemetry: Optional[bool] = None
    backend: Optional[str] = None


def _child_entry(conn, scan_fn, resolved) -> None:
    """Child-process entry: run one scan, ship the record (or error) back."""
    try:
        record = scan_fn(resolved)
        conn.send(("ok", record.to_dict()))
    # Process boundary: every failure (incl. KeyboardInterrupt/SystemExit)
    # is serialized onto the pipe so the parent can log/retry it — nothing
    # is swallowed, it is forwarded.
    except BaseException as error:  # repro-lint: disable=exception-hygiene
        conn.send(("error", f"{type(error).__name__}: {error}"))
    finally:
        conn.close()


def run_scan_in_child(scan_fn: Callable[..., ScanRecord], resolved,
                      timeout: Optional[float]) -> ScanRecord:
    """Execute ``scan_fn(resolved)`` in a killable child process.

    Args:
        scan_fn: Module-level scan callable (pickled to the child).
        resolved: Its single argument (a ``ResolvedScan`` in production).
        timeout: Seconds before the child is terminated; ``None`` waits
            forever.

    Returns:
        The child's :class:`~repro.service.records.ScanRecord`.

    Raises:
        JobTimeoutError: the deadline passed (the child is killed first).
        RuntimeError: the child reported an error or died without answering.
    """
    parent_conn, child_conn = multiprocessing.Pipe(duplex=False)
    process = multiprocessing.Process(target=_child_entry,
                                      args=(child_conn, scan_fn, resolved))
    process.start()
    child_conn.close()
    try:
        if not parent_conn.poll(timeout):
            process.terminate()
            process.join()
            raise JobTimeoutError(
                f"scan exceeded {timeout:.1f}s and was killed.")
        try:
            status, payload = parent_conn.recv()
        except EOFError:
            raise RuntimeError("scan worker died without reporting a result "
                               f"(exit code {process.exitcode}).") from None
        if status != "ok":
            raise RuntimeError(f"scan worker failed: {payload}")
        return record_from_dict(payload)
    finally:
        parent_conn.close()
        process.join()


class ChildBackend(ExecutionBackend):
    """Killable-child execution: one dedicated process per job.

    The daemon's historical execution model, packaged behind the
    :class:`~repro.service.backends.ExecutionBackend` contract: each payload
    runs in a child process that is *terminated* at its deadline, so a hung
    detector cannot wedge the loop the way it wedges a pool worker.  The
    ``retries`` budget is ignored — the daemon retries through its own
    prioritized queue so a flaky job goes to the back rather than blocking
    the batch.
    """

    name = "child"

    def run(self, fn: Callable[..., Any], payloads: Sequence[Any],
            timeout: Optional[float] = None, retries: int = 0,
            metrics: Optional[ServiceMetrics] = None) -> List[Any]:
        """Run each payload in its own killable child (see the base contract)."""
        return [run_scan_in_child(fn, payload, timeout)
                for payload in payloads]


class WatchDaemon:
    """The ``python -m repro watch`` loop: poll, enqueue, scan, publish stats.

    Args:
        config: See :class:`DaemonConfig`.
        scheduler: Optional pre-built scheduler (the daemon builds one around
            ``config.store_path`` when omitted); its
            :class:`~repro.service.scheduler.ServiceMetrics` is what the
            stats endpoint publishes.
    """

    def __init__(self, config: DaemonConfig,
                 scheduler: Optional[ScanScheduler] = None) -> None:
        self.config = config
        if scheduler is None:
            store = open_store(config.store_path)
            scheduler = ScanScheduler(store=store,
                                      job_timeout=config.job_timeout,
                                      job_retries=config.max_retries,
                                      telemetry=config.telemetry)
        self.scheduler = scheduler
        self.backend = (ChildBackend() if config.backend in (None, "child")
                        else create_backend(config.backend,
                                            store_path=config.store_path))
        self.telemetry = self.scheduler.telemetry
        self.spans_path = sidecar_path(config.store_path, SPANS_NAME)
        self.metrics_path = sidecar_path(config.store_path, METRICS_NAME)
        if self.telemetry:
            TRACER.enable()
        self.watcher = CheckpointWatcher(config.watch_dir,
                                         patterns=config.patterns,
                                         settle_polls=config.settle_polls)
        self.queue = JobQueue()
        self.stats_path = config.stats_path or default_stats_path(
            config.store_path)
        #: Checkpoints ever reported ready by the watcher.
        self.checkpoints_seen = 0
        #: Completed loop iterations (polls).
        self.iterations = 0
        #: Auto-repair jobs completed (fresh computations, not cache hits).
        self.repairs_completed = 0

    # ------------------------------------------------------------------ #
    # Queue handling
    # ------------------------------------------------------------------ #
    def _enqueue(self, checkpoint: str) -> None:
        """Queue one job per configured detector for a ready checkpoint."""
        self.checkpoints_seen += 1
        for priority, detector in enumerate(self.config.detectors):
            self.queue.push(ScanJob(checkpoint=checkpoint, detector=detector),
                            priority=priority)
            _LOG.info("queued %s [%s]", checkpoint, detector)

    def _request_for(self, job: ScanJob) -> ScanRequest:
        """Build the :class:`ScanRequest` a queued job resolves to."""
        return ScanRequest(checkpoint=job.checkpoint, detector=job.detector,
                           **self.config.request_options)

    def _repair_request_for(self, job: RepairJob) -> RepairRequest:
        """Build the :class:`RepairRequest` an auto-repair job resolves to."""
        return RepairRequest(
            scan=ScanRequest(checkpoint=job.checkpoint, detector=job.detector,
                             **self.config.request_options),
            **self.config.repair_options)

    def _enqueue_repair(self, job: ScanJob) -> None:
        """Queue an auto-repair for a flagged checkpoint, behind the scans."""
        priority = len(self.config.detectors) + list(
            self.config.detectors).index(job.detector) \
            if job.detector in self.config.detectors \
            else len(self.config.detectors)
        self.queue.push(RepairJob(checkpoint=job.checkpoint,
                                  detector=job.detector), priority=priority)
        _LOG.info("queued auto-repair for %s [%s]", job.checkpoint,
                  job.detector)

    def _process(self, queued: QueuedJob) -> None:
        """Run one queued job: cache-check, execute in a child, retry on failure.

        Scan jobs that come back BACKDOORED enqueue an auto-repair job
        (when ``auto_repair`` is on) behind the remaining scans.
        """
        job = queued.payload
        is_repair = isinstance(job, RepairJob)
        metrics = self.scheduler.metrics
        store = self.scheduler.store
        # Each job is one trace: the parent's root span plus whatever the
        # child process records under the stamped (trace_id, parent_span_id)
        # — its spans ride home on the record dict through the pipe.
        root = (TRACER.begin("daemon.job", trace_id=new_trace_id(),
                             checkpoint=job.checkpoint, detector=job.detector,
                             kind="repair" if is_repair else "scan")
                if self.telemetry else None)
        try:
            try:
                with TRACER.context_of(root):
                    if is_repair:
                        resolved = resolve_repair(self._repair_request_for(job))
                    else:
                        resolved = resolve_request(self._request_for(job))
            except (OSError, ValueError, KeyError) as error:
                # Unreadable checkpoint, bad metadata, unknown model/dataset
                # (CheckpointMismatchError is a ValueError) — the file is
                # bad, not the daemon; skip it and keep watching.
                _LOG.warning("%s [%s]: cannot resolve (%s)", job.checkpoint,
                             job.detector, error)
                metrics.failures += 1
                return
            if root is not None:
                resolved = dataclass_replace(resolved, trace_id=root.trace_id,
                                             parent_span_id=root.span_id)
            cached = store.lookup(resolved.key) if store is not None else None
            if cached is not None:
                if root is not None:
                    root.attrs["cache_hit"] = True
                metrics.record_hit()
                _LOG.info("%s [%s]: cache hit", job.checkpoint, job.detector)
                if not is_repair and self.config.auto_repair and \
                        cached.is_backdoored:
                    self._enqueue_repair(job)
                return
            start = time.monotonic()
            worker_fn = (self.config.repair_fn if is_repair
                         else self.config.scan_fn)
            try:
                record = self.backend.run(worker_fn, [resolved],
                                          timeout=self.config.job_timeout)[0]
            # Child jobs can die in arbitrary ways (timeout, OOM kill, any
            # detector error); the daemon's liveness contract is to log,
            # retry within budget, and keep watching.
            except Exception as error:  # repro-lint: disable=exception-hygiene
                if queued.attempts < self.config.max_retries:
                    metrics.retries += 1
                    _LOG.warning("%s [%s]: %s — retrying (%d/%d)",
                                 job.checkpoint, job.detector, error,
                                 queued.attempts + 1, self.config.max_retries)
                    self.queue.requeue(queued)
                else:
                    metrics.failures += 1
                    _LOG.error("%s [%s]: giving up after %d attempt(s): %s",
                               job.checkpoint, job.detector,
                               queued.attempts + 1, error)
                return
            child_spans = record.pop_spans()
            if self.telemetry:
                TRACER.add(child_spans)
                cache_stats = ((record.telemetry or {}).get("pool") or {}
                               ).get("cache") or {}
                if cache_stats:
                    # The child's cache is process-private, so its counters
                    # are already per-job deltas.
                    metrics.record_activation_cache(
                        cache_stats.get("hits", 0),
                        cache_stats.get("misses", 0))
            metrics.record_miss(time.monotonic() - start)
            if store is not None:
                store.add(record)
            if is_repair:
                self.repairs_completed += 1
                _LOG.info("%s [%s] repair -> %s (%.1fs)", job.checkpoint,
                          job.detector,
                          "success" if record.success else "NOT repaired",
                          record.seconds)
                return
            _LOG.info("%s [%s] -> %s (%.1fs)", job.checkpoint, job.detector,
                      "BACKDOORED" if record.is_backdoored else "clean",
                      record.seconds)
            if self.config.auto_repair and record.is_backdoored:
                self._enqueue_repair(job)
        finally:
            if root is not None:
                TRACER.finish(root)
                TRACER.flush(self.spans_path)

    # ------------------------------------------------------------------ #
    # Loop
    # ------------------------------------------------------------------ #
    def run_once(self) -> int:
        """One iteration: poll the drop dir, drain the queue, publish stats.

        Returns:
            Number of jobs taken off the queue this iteration.
        """
        for checkpoint in self.watcher.poll():
            self._enqueue(checkpoint)
        processed = 0
        while self.queue:
            self._process(self.queue.pop())
            processed += 1
        self.iterations += 1
        self.write_stats()
        return processed

    def run(self, max_iterations: Optional[int] = None) -> Dict[str, Any]:
        """Run the polling loop until interrupted (or for ``max_iterations``).

        Args:
            max_iterations: Stop after this many polls; ``None`` (production)
                loops until ``KeyboardInterrupt``.

        Returns:
            The final stats payload (also on disk at ``stats_path``).
        """
        try:
            while max_iterations is None or self.iterations < max_iterations:
                self.run_once()
                if max_iterations is not None and \
                        self.iterations >= max_iterations:
                    break
                time.sleep(self.config.poll_interval)
        except KeyboardInterrupt:
            _LOG.info("interrupted — writing final stats.")
            self.write_stats()
        return self.stats()

    # ------------------------------------------------------------------ #
    # Stats endpoint
    # ------------------------------------------------------------------ #
    def stats(self) -> Dict[str, Any]:
        """The current stats payload (the endpoint-file schema)."""
        payload: Dict[str, Any] = {"format": STATS_FORMAT}
        snapshot = self.scheduler.metrics.snapshot()
        payload.update(snapshot)
        # Nested copy of the same snapshot: the schema the metrics exporter
        # and ``report --json`` consume (the flat keys stay for older
        # readers of the endpoint file).
        payload["metrics"] = snapshot
        payload.update({
            "backend": self.backend.name,
            "queue_depth": len(self.queue),
            "checkpoints_seen": self.checkpoints_seen,
            "repairs_completed": self.repairs_completed,
            "auto_repair": bool(self.config.auto_repair),
            "iterations": self.iterations,
            "watch_dir": os.path.abspath(self.config.watch_dir),
            "store_path": os.path.abspath(self.config.store_path),
            "updated_at": datetime.now(timezone.utc).isoformat(
                timespec="seconds"),
        })
        from .fleet import fleet_snapshot
        fleet = fleet_snapshot(self.config.store_path)
        if fleet is not None:
            payload["fleet"] = fleet
        return payload

    def write_stats(self) -> None:
        """Atomically rewrite the stats endpoint file (and ``metrics.prom``).

        The Prometheus exposition beside the store is rebuilt from the same
        inputs every cycle — store rows plus the stats payload — so a
        scrape never sees partially updated families.
        """
        stats = self.stats()
        atomic_write(self.stats_path,
                     json.dumps(stats, indent=2, sort_keys=True) + "\n")
        if not self.telemetry:
            return
        store = self.scheduler.store
        try:
            rows = ([record.to_dict() for record in store.scan_records()]
                    if store is not None else [])
            registry = build_service_registry(rows, stats)
            atomic_write(self.metrics_path, registry.render())
        # Telemetry export must never take the daemon down: any failure is
        # logged and the next cycle retries with fresh store rows.
        except Exception as error:  # repro-lint: disable=exception-hygiene
            _LOG.warning("metrics.prom export failed: %s", error)
