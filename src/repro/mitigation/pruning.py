"""Activation-differential neuron pruning driven by the reversed trigger.

A backdoored model routes its shortcut through a small set of units that
fire hard on the trigger and barely at all on clean inputs (the
fine-pruning observation of Liu et al., RAID 2018 — here made *targeted*
by using the detector's reversed trigger instead of hoping dormant units
coincide with the backdoor).  :func:`activation_differential_prune`
measures, for every penultimate feature feeding the classifier head, its
mean activation on clean inputs versus the same inputs stamped with each
flagged reversed ``(pattern, mask)``, and zeroes the classifier-input
weights of the units most disproportionately excited by the trigger.

Pruning happens at the input of the model's final ``Linear`` (every model
in the zoo ends in one): zeroing column ``j`` of the head's weight removes
feature ``j``'s influence on every logit, is architecture-agnostic, and —
unlike a forward-hook mask — survives a ``state_dict`` round trip, so a
pruned checkpoint stays pruned after ``load_checkpoint``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.detection import ReversedTrigger
from ..core.trigger_optimizer import blend_images
from ..data.dataset import Dataset
from ..nn.layers import Linear, Module
from ..nn.tensor import Tensor, no_grad

__all__ = ["PruningConfig", "PruningReport", "find_classifier_head",
           "activation_differential_prune"]


@dataclass
class PruningConfig:
    """Knobs of the activation-differential pruning pass."""

    #: Upper bound on the fraction of penultimate units zeroed.  Strongly
    #: trained backdoors spread their shortcut over tens of units, so the
    #: budget must be large enough to take the whole pathway out.
    max_prune_fraction: float = 0.1
    #: A unit is prunable when its (triggered - clean) activation
    #: differential exceeds ``mean + z_threshold * std`` over all units.
    z_threshold: float = 1.5
    #: Forward batch size for the activation measurements.
    batch_size: int = 64

    def __post_init__(self) -> None:
        if not 0.0 < self.max_prune_fraction <= 1.0:
            raise ValueError("max_prune_fraction must be in (0, 1].")
        if self.z_threshold < 0:
            raise ValueError("z_threshold must be non-negative.")
        if self.batch_size <= 0:
            raise ValueError("batch_size must be positive.")


@dataclass
class PruningReport:
    """What one :func:`activation_differential_prune` run zeroed."""

    #: Dotted path of the classifier-head ``Linear`` whose inputs were pruned.
    layer: str = ""
    #: Number of penultimate features feeding the head.
    units_total: int = 0
    #: Indices of the zeroed units, ascending.
    pruned_units: List[int] = field(default_factory=list)
    #: Per-pruned-unit activation differential (same order as
    #: ``pruned_units``).
    differentials: List[float] = field(default_factory=list)

    @property
    def units_pruned(self) -> int:
        """Number of units zeroed by the pass."""
        return len(self.pruned_units)

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe payload (embedded in repair reports/records)."""
        return {
            "layer": self.layer,
            "units_total": int(self.units_total),
            "pruned_units": [int(u) for u in self.pruned_units],
            "differentials": [float(d) for d in self.differentials],
        }


def _named_modules(module: Module, prefix: str = ""):
    yield prefix, module
    for name, child in module._modules.items():
        yield from _named_modules(child, f"{prefix}{name}." if prefix or name
                                  else prefix)


def find_classifier_head(model: Module) -> Tuple[str, Linear]:
    """Locate the model's final ``Linear`` (the classifier head).

    Returns:
        ``(dotted_name, module)`` of the last ``Linear`` in traversal order
        — for every architecture in the zoo that is the layer mapping
        penultimate features to logits.

    Raises:
        ValueError: the model contains no ``Linear`` layer.
    """
    head: Optional[Tuple[str, Linear]] = None
    for name, module in _named_modules(model):
        if isinstance(module, Linear):
            head = (name.rstrip("."), module)
    if head is None:
        raise ValueError("Model has no Linear layer to prune at.")
    return head


def _head_input_activations(model: Module, head: Linear, images: np.ndarray,
                            batch_size: int) -> np.ndarray:
    """Mean absolute activation per penultimate unit over ``images``.

    The head's ``forward`` is temporarily shadowed with a recording wrapper
    (restored in all cases), so no architecture needs to expose its feature
    extractor explicitly.
    """
    captured: List[np.ndarray] = []
    original_forward = head.forward

    def recording_forward(x: Tensor) -> Tensor:
        captured.append(np.abs(x.data).astype(np.float64))
        return original_forward(x)

    head.forward = recording_forward
    try:
        model.eval()
        with no_grad():
            for start in range(0, len(images), batch_size):
                model(Tensor(images[start:start + batch_size]))
    finally:
        del head.forward
    if not captured:
        return np.zeros(head.in_features, dtype=np.float64)
    totals = np.zeros(head.in_features, dtype=np.float64)
    count = 0
    for batch in captured:
        totals += batch.sum(axis=0)
        count += len(batch)
    return totals / max(count, 1)


def activation_differential_prune(model: Module, clean_data: Dataset,
                                  triggers: Sequence[ReversedTrigger],
                                  config: Optional[PruningConfig] = None
                                  ) -> PruningReport:
    """Zero the penultimate units the reversed triggers excite the most.

    Args:
        model: The flagged model, pruned **in place** (classifier-head
            weight columns and, transitively, every logit's view of the
            pruned features).
        clean_data: Clean reference inputs; conditional triggers measure
            their differential on their source class only.
        triggers: Flagged reversed triggers with real ``pattern``/``mask``.
        config: Pruning budget and threshold.

    Returns:
        A :class:`PruningReport` naming the pruned units.
    """
    config = config or PruningConfig()
    triggers = list(triggers)
    if not triggers:
        raise ValueError("activation_differential_prune needs at least one "
                         "reversed trigger.")
    layer_name, head = find_classifier_head(model)
    clean_mean = _head_input_activations(model, head, clean_data.images,
                                         config.batch_size)
    # Max differential across the flagged triggers: a unit serving any of
    # the flagged cells' shortcuts is a pruning candidate.
    differential = np.full(head.in_features, -np.inf, dtype=np.float64)
    for trigger in triggers:
        images = clean_data.images
        base = clean_mean
        if trigger.source_class is not None:
            indices = clean_data.class_indices(int(trigger.source_class))
            if len(indices):
                images = clean_data.images[indices]
                base = _head_input_activations(model, head, images,
                                               config.batch_size)
        stamped = blend_images(images, trigger.pattern, trigger.mask)
        triggered_mean = _head_input_activations(model, head, stamped,
                                                 config.batch_size)
        differential = np.maximum(differential, triggered_mean - base)

    spread = float(differential.std())
    threshold = float(differential.mean()) + config.z_threshold * spread
    candidates = np.where(differential > threshold)[0] if spread > 1e-12 \
        else np.empty(0, dtype=np.int64)
    budget = max(1, int(round(config.max_prune_fraction * head.in_features)))
    if len(candidates) > budget:
        order = np.argsort(differential[candidates])[::-1]
        candidates = candidates[order[:budget]]
    candidates = np.sort(candidates)

    for unit in candidates:
        head.weight.data[:, int(unit)] = 0.0
    return PruningReport(
        layer=layer_name,
        units_total=int(head.in_features),
        pruned_units=[int(u) for u in candidates],
        differentials=[float(differential[u]) for u in candidates],
    )
