"""Backdoor mitigation: detect -> repair -> verify.

The detectors' reversed ``(pattern, mask)`` triggers are actionable
artifacts, not just evidence.  This package turns a flagged
:class:`~repro.core.detection.DetectionResult` into a repaired model:

* :mod:`repro.mitigation.unlearning` — trigger-informed unlearning:
  fine-tune on clean batches stamped with each flagged reversed trigger but
  labeled with their true classes (scenario-aware per-``(source, target)``
  stamping), directly unlearning the poisoned shortcut;
* :mod:`repro.mitigation.pruning` — activation-differential neuron pruning:
  zero the penultimate units disproportionately excited by the reversed
  trigger versus clean inputs;
* :mod:`repro.mitigation.pipeline` — :class:`RepairPlan` /
  :class:`RepairReport` orchestration: apply a strategy (unlearn, prune, or
  both), then re-measure clean accuracy, reversed-trigger flip rates, true
  ASR when the attack is known, and optionally re-scan — with a
  configurable clean-accuracy guardrail that rolls bad repairs back.

The scanning service exposes all of this as cacheable ``python -m repro
repair`` jobs (:mod:`repro.service.repair`), and
:func:`repro.eval.experiments.run_repair_sweep` sweeps it across
attack x scenario x detector for before/after tables.
"""

from .pipeline import (
    STRATEGIES,
    RepairPlan,
    RepairReport,
    flagged_triggers,
    repair_model,
    reversed_trigger_success,
)
from .pruning import (
    PruningConfig,
    PruningReport,
    activation_differential_prune,
    find_classifier_head,
)
from .unlearning import UnlearningConfig, UnlearningReport, trigger_unlearn

__all__ = [
    "STRATEGIES",
    "RepairPlan",
    "RepairReport",
    "repair_model",
    "flagged_triggers",
    "reversed_trigger_success",
    "UnlearningConfig",
    "UnlearningReport",
    "trigger_unlearn",
    "PruningConfig",
    "PruningReport",
    "activation_differential_prune",
    "find_classifier_head",
]
