"""Detect -> repair -> verify orchestration.

:func:`repair_model` consumes a full :class:`~repro.core.detection.DetectionResult`
(real reversed-trigger arrays, not the compact store summaries), applies the
:class:`RepairPlan`'s strategy — trigger-informed unlearning
(:mod:`.unlearning`), activation-differential pruning (:mod:`.pruning`), or
both — and then *verifies*: clean accuracy before/after, the reversed
triggers' flip rates before/after, the true ASR when the caller can supply
the attack, and an optional re-scan with the original detector.  A
configurable clean-accuracy guardrail rolls the weights back when a repair
costs more accuracy than allowed.

The service layer (:mod:`repro.service.repair`) wraps this into cacheable
``python -m repro repair`` jobs; :func:`repro.eval.experiments.run_repair_sweep`
sweeps it across attacks x scenarios x detectors for the paper-style
before/after tables.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core.detection import DetectionResult, ReversedTrigger
from ..core.trigger_optimizer import blend_images
from ..data.dataset import Dataset
from ..eval.trainer import evaluate_accuracy, evaluate_asr
from ..nn.layers import Module
from ..nn.tensor import Tensor, no_grad
from .pruning import PruningConfig, PruningReport, activation_differential_prune
from .unlearning import (
    UnlearningConfig,
    UnlearningReport,
    cell_label,
    trigger_unlearn,
)

__all__ = ["STRATEGIES", "RepairPlan", "RepairReport", "repair_model",
           "flagged_triggers", "reversed_trigger_success"]

#: Repair strategies :func:`repair_model` understands, in escalation order.
STRATEGIES = ("unlearn", "prune", "both")


@dataclass(frozen=True)
class RepairPlan:
    """How to repair a flagged model, and how much accuracy it may cost.

    ``max_accuracy_drop`` is the guardrail: when the post-repair clean
    accuracy falls more than this many *fraction points* (0.03 = 3 points)
    below the pre-repair accuracy, the repair is rejected and — with
    ``rollback_on_guardrail`` — the original weights are restored.
    """

    strategy: str = "unlearn"
    unlearning: UnlearningConfig = field(default_factory=UnlearningConfig)
    pruning: PruningConfig = field(default_factory=PruningConfig)
    max_accuracy_drop: float = 0.03
    #: Post-repair reversed-trigger flip rate below which a cell counts as
    #: neutralized (feeds :attr:`RepairReport.success`).
    success_flip_rate: float = 0.2
    #: Re-run the detector on the repaired model when one is available.
    rescan: bool = True
    rollback_on_guardrail: bool = True

    def __post_init__(self) -> None:
        if self.strategy not in STRATEGIES:
            raise ValueError(f"Unknown repair strategy '{self.strategy}'. "
                             f"Available: {', '.join(STRATEGIES)}")
        if self.max_accuracy_drop < 0:
            raise ValueError("max_accuracy_drop must be non-negative.")
        if not 0.0 < self.success_flip_rate <= 1.0:
            raise ValueError("success_flip_rate must be in (0, 1].")


@dataclass
class RepairReport:
    """Everything the detect -> repair -> verify pipeline measured."""

    strategy: str
    detector: str = ""
    #: ``"source->target"`` labels of the repaired cells (``*`` = any source).
    cells: List[str] = field(default_factory=list)
    #: True when a repair was actually applied (something was flagged).
    repaired: bool = False
    accuracy_before: float = 0.0
    accuracy_after: float = 0.0
    #: True attack success rate before/after (only when the caller supplied
    #: the ground-truth attack — experiment sweeps do, the service cannot).
    asr_before: Optional[float] = None
    asr_after: Optional[float] = None
    #: Reversed-trigger flip rates per cell, before/after the repair — the
    #: service's attack-free ASR proxy.
    trigger_success_before: Dict[str, float] = field(default_factory=dict)
    trigger_success_after: Dict[str, float] = field(default_factory=dict)
    verdict_before: bool = False
    #: Re-scan verdict on the repaired model (``None`` when not re-scanned).
    #: A re-scan may flag *different* cells than the repaired ones (a second
    #: backdoor, or MAD noise at small scales) — that does not fail the
    #: repair itself; see ``repaired_cells_clear``.
    verdict_after: Optional[bool] = None
    #: False when the re-scan still flags one of the cells this repair
    #: targeted (the repair did not take).
    repaired_cells_clear: bool = True
    guardrail: float = 0.0
    guardrail_ok: bool = True
    rolled_back: bool = False
    unlearning: Optional[UnlearningReport] = None
    pruning: Optional[PruningReport] = None
    seconds: float = 0.0

    @property
    def accuracy_drop(self) -> float:
        """Clean-accuracy cost of the repair (fraction points)."""
        return self.accuracy_before - self.accuracy_after

    @property
    def max_trigger_success_after(self) -> float:
        """Worst post-repair flip rate across the repaired cells."""
        if not self.trigger_success_after:
            return 0.0
        return max(self.trigger_success_after.values())

    @property
    def success(self) -> bool:
        """Did the repair neutralize the backdoor within the guardrail?

        True when nothing needed repair, or when the repair held the
        guardrail, was not rolled back, every repaired cell's flip rate fell
        below the plan's ``success_flip_rate``, and any re-scan no longer
        flags the repaired cells.  A re-scan flag on an *unrelated* cell is
        surfaced via ``verdict_after`` (scan it / repair it as a new
        finding) but does not fail this repair.
        """
        if not self.repaired:
            return not self.verdict_before
        if not self.guardrail_ok or self.rolled_back:
            return False
        if not self.repaired_cells_clear:
            return False
        return all(rate < self.guardrail_flip_rate
                   for rate in self.trigger_success_after.values())

    #: Success threshold copied from the plan (kept on the report so the
    #: JSON round trip is self-describing).
    guardrail_flip_rate: float = 0.2

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe payload (what :class:`repro.service.RepairRecord` embeds)."""
        return {
            "strategy": self.strategy,
            "detector": self.detector,
            "cells": list(self.cells),
            "repaired": bool(self.repaired),
            "accuracy_before": float(self.accuracy_before),
            "accuracy_after": float(self.accuracy_after),
            "asr_before": (float(self.asr_before)
                           if self.asr_before is not None else None),
            "asr_after": (float(self.asr_after)
                          if self.asr_after is not None else None),
            "trigger_success_before": {k: float(v) for k, v
                                       in self.trigger_success_before.items()},
            "trigger_success_after": {k: float(v) for k, v
                                      in self.trigger_success_after.items()},
            "verdict_before": bool(self.verdict_before),
            "verdict_after": (bool(self.verdict_after)
                              if self.verdict_after is not None else None),
            "repaired_cells_clear": bool(self.repaired_cells_clear),
            "guardrail": float(self.guardrail),
            "guardrail_ok": bool(self.guardrail_ok),
            "rolled_back": bool(self.rolled_back),
            "guardrail_flip_rate": float(self.guardrail_flip_rate),
            "unlearning": (self.unlearning.to_dict()
                           if self.unlearning is not None else None),
            "pruning": (self.pruning.to_dict()
                        if self.pruning is not None else None),
            "seconds": float(self.seconds),
            "success": bool(self.success),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "RepairReport":
        """Rebuild a (summary-level) report from :meth:`to_dict`.

        The nested unlearning/pruning payloads are restored as their report
        dataclasses; the derived ``success`` flag is recomputed, not read.
        """
        unlearning = None
        if payload.get("unlearning") is not None:
            raw = dict(payload["unlearning"])
            unlearning = UnlearningReport(
                cells=[str(c) for c in raw.get("cells", [])],
                epochs=int(raw.get("epochs", 0)),
                steps=int(raw.get("steps", 0)),
                stamped={str(k): int(v)
                         for k, v in dict(raw.get("stamped", {})).items()},
                loss_history=[float(v) for v in raw.get("loss_history", [])])
        pruning = None
        if payload.get("pruning") is not None:
            raw = dict(payload["pruning"])
            pruning = PruningReport(
                layer=str(raw.get("layer", "")),
                units_total=int(raw.get("units_total", 0)),
                pruned_units=[int(u) for u in raw.get("pruned_units", [])],
                differentials=[float(d) for d in raw.get("differentials", [])])
        return cls(
            strategy=str(payload["strategy"]),
            detector=str(payload.get("detector", "")),
            cells=[str(c) for c in payload.get("cells", [])],
            repaired=bool(payload.get("repaired", False)),
            accuracy_before=float(payload.get("accuracy_before", 0.0)),
            accuracy_after=float(payload.get("accuracy_after", 0.0)),
            asr_before=(float(payload["asr_before"])
                        if payload.get("asr_before") is not None else None),
            asr_after=(float(payload["asr_after"])
                       if payload.get("asr_after") is not None else None),
            trigger_success_before={
                str(k): float(v) for k, v
                in dict(payload.get("trigger_success_before", {})).items()},
            trigger_success_after={
                str(k): float(v) for k, v
                in dict(payload.get("trigger_success_after", {})).items()},
            verdict_before=bool(payload.get("verdict_before", False)),
            verdict_after=(bool(payload["verdict_after"])
                           if payload.get("verdict_after") is not None
                           else None),
            repaired_cells_clear=bool(payload.get("repaired_cells_clear",
                                                  True)),
            guardrail=float(payload.get("guardrail", 0.0)),
            guardrail_ok=bool(payload.get("guardrail_ok", True)),
            rolled_back=bool(payload.get("rolled_back", False)),
            guardrail_flip_rate=float(payload.get("guardrail_flip_rate", 0.2)),
            unlearning=unlearning,
            pruning=pruning,
            seconds=float(payload.get("seconds", 0.0)),
        )


def flagged_triggers(detection: DetectionResult) -> List[ReversedTrigger]:
    """The reversed triggers of the cells a detection actually flagged.

    Pair-mode results select by flagged ``(source, target)`` cell; classic
    results select by flagged class.
    """
    if detection.flagged_pairs:
        flagged = set(detection.flagged_pairs)
        return [t for t in detection.triggers if t.pair in flagged]
    flagged_classes = set(detection.flagged_classes)
    return [t for t in detection.triggers if t.target_class in flagged_classes]


def _require_full_triggers(triggers: Sequence[ReversedTrigger],
                           clean_data: Dataset) -> None:
    spatial = clean_data.images.shape[-2:]
    for trigger in triggers:
        if tuple(trigger.pattern.shape[-2:]) != tuple(spatial):
            raise ValueError(
                f"Reversed trigger for cell {cell_label(trigger)} has shape "
                f"{tuple(trigger.pattern.shape)} — repair needs full "
                "pattern/mask arrays, but this looks like a compact store "
                "record (norms only).  Re-run detection to obtain real "
                "triggers.")


def reversed_trigger_success(model: Module, trigger: ReversedTrigger,
                             data: Dataset, batch_size: int = 128) -> float:
    """Fraction of victim samples a reversed trigger flips to its target.

    The attack-free ASR proxy: unconditional triggers stamp every non-target
    sample, conditional triggers stamp their source class only.  0.0 when
    the data holds no victims.
    """
    if trigger.source_class is not None:
        mask = data.labels == int(trigger.source_class)
    else:
        mask = data.labels != int(trigger.target_class)
    images = data.images[mask]
    if len(images) == 0:
        return 0.0
    model.eval()
    hits = 0
    with no_grad():
        for start in range(0, len(images), batch_size):
            stamped = blend_images(images[start:start + batch_size],
                                   trigger.pattern, trigger.mask)
            preds = model(Tensor(stamped)).data.argmax(axis=1)
            hits += int((preds == int(trigger.target_class)).sum())
    return hits / len(images)


def repair_model(model: Module, detection: DetectionResult,
                 clean_data: Dataset,
                 plan: Optional[RepairPlan] = None,
                 detector=None,
                 eval_data: Optional[Dataset] = None,
                 attack=None,
                 rng: Optional[np.random.Generator] = None) -> RepairReport:
    """Repair ``model`` in place from a detection verdict, then verify.

    Args:
        model: The scanned model (mutated by the repair; restored when the
            guardrail trips and the plan rolls back).
        detection: A *full* detection result — its flagged cells supply the
            ``(pattern, mask)`` pairs the repair stamps/prunes with.
        clean_data: Clean samples driving unlearning batches and pruning
            activation statistics.
        plan: Strategy, budgets, and the accuracy guardrail.
        detector: Optional detector instance for the post-repair re-scan
            (same scan grid as ``detection``).
        eval_data: Held-out data for the accuracy/ASR measurements
            (defaults to ``clean_data``; a disjoint set gives honest
            numbers).
        attack: Optional ground-truth attack; when present the report
            carries true ASR before/after.
        rng: Randomness for the unlearning fine-tune.

    Returns:
        A :class:`RepairReport`; ``report.success`` is the headline verdict.
    """
    plan = plan or RepairPlan()
    rng = rng or np.random.default_rng()
    eval_data = eval_data if eval_data is not None else clean_data
    start = time.perf_counter()

    triggers = flagged_triggers(detection)
    report = RepairReport(strategy=plan.strategy, detector=detection.detector,
                          cells=[cell_label(t) for t in triggers],
                          verdict_before=detection.is_backdoored,
                          guardrail=plan.max_accuracy_drop,
                          guardrail_flip_rate=plan.success_flip_rate)
    report.accuracy_before = evaluate_accuracy(model, eval_data)
    if attack is not None:
        report.asr_before = evaluate_asr(model, eval_data, attack, rng=rng)
    if not triggers:
        report.accuracy_after = report.accuracy_before
        report.asr_after = report.asr_before
        report.seconds = time.perf_counter() - start
        return report
    _require_full_triggers(triggers, clean_data)
    report.trigger_success_before = {
        cell_label(t): reversed_trigger_success(model, t, eval_data)
        for t in triggers}

    snapshot = model.state_dict()  # state_dict() already copies every array
    if plan.strategy in ("prune", "both"):
        report.pruning = activation_differential_prune(
            model, clean_data, triggers, config=plan.pruning)
    if plan.strategy in ("unlearn", "both"):
        report.unlearning = trigger_unlearn(
            model, clean_data, triggers, config=plan.unlearning, rng=rng)
    report.repaired = True

    report.accuracy_after = evaluate_accuracy(model, eval_data)
    if attack is not None:
        report.asr_after = evaluate_asr(model, eval_data, attack, rng=rng)
    report.trigger_success_after = {
        cell_label(t): reversed_trigger_success(model, t, eval_data)
        for t in triggers}
    report.guardrail_ok = report.accuracy_drop <= plan.max_accuracy_drop
    if not report.guardrail_ok and plan.rollback_on_guardrail:
        model.load_state_dict(snapshot)
        report.rolled_back = True
    elif plan.rescan and detector is not None:
        pairs = ([t.pair for t in detection.triggers]
                 if detection.pair_anomaly_indices else None)
        classes = (sorted({t.target_class for t in detection.triggers})
                   if pairs is None else None)
        rescan = detector.detect(model, classes=classes, pairs=pairs)
        report.verdict_after = rescan.is_backdoored
        if rescan.flagged_pairs:
            repaired_pairs = {t.pair for t in triggers}
            report.repaired_cells_clear = not (
                repaired_pairs & set(rescan.flagged_pairs))
        else:
            repaired_classes = {t.target_class for t in triggers}
            report.repaired_cells_clear = not (
                repaired_classes & set(rescan.flagged_classes))
    report.seconds = time.perf_counter() - start
    return report
