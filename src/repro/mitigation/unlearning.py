"""Trigger-informed unlearning: fine-tune the backdoor away.

The reversed ``(pattern, mask)`` pairs a detector recovers are not just
evidence — they are the repair tool.  Following the patching recipe of
Neural Cleanse (Wang et al., S&P 2019), :func:`trigger_unlearn` fine-tunes
the model on clean batches where a fraction of the samples are *stamped*
with each flagged reversed trigger but keep their **true** labels.  The
gradient signal "trigger present, label unchanged" directly unlearns the
shortcut ``trigger -> target`` that poisoning installed, while the
unstamped remainder of every batch anchors clean accuracy.

Stamping is scenario-aware: an unconditional trigger (``source_class is
None``) is stamped onto samples of any class, while a per-``(source,
target)`` trigger from a pair-mode scan (source-conditional or all-to-all
verdicts) is stamped only onto samples of its source class — the only
inputs for which that cell's shortcut fires, and therefore the only inputs
that carry an unlearning gradient for it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core.detection import ReversedTrigger
from ..core.trigger_optimizer import blend_images
from ..data.dataset import DataLoader, Dataset
from ..nn import functional as F
from ..nn.layers import Module
from ..nn.optim import SGD, Adam
from ..nn.tensor import Tensor

__all__ = ["UnlearningConfig", "UnlearningReport", "trigger_unlearn",
           "cell_label"]


def cell_label(trigger: ReversedTrigger) -> str:
    """Stable ``"source->target"`` label for a scan cell (``*`` = any source).

    The shared key format of every per-cell mapping in the repair reports
    (``UnlearningReport.stamped``, ``RepairReport.trigger_success_*``), so
    the CLI can join them.
    """
    source = "*" if trigger.source_class is None else int(trigger.source_class)
    return f"{source}->{int(trigger.target_class)}"


@dataclass
class UnlearningConfig:
    """Hyperparameters of the trigger-stamped unlearning fine-tune."""

    #: Fine-tuning epochs over the clean set.
    epochs: int = 3
    batch_size: int = 32
    #: Learning rate — deliberately below training rates so the fine-tune
    #: removes the shortcut without re-fitting the clean features.
    learning_rate: float = 1e-3
    optimizer: str = "adam"
    #: Fraction of each trigger's *eligible pool* stamped per batch: the
    #: whole batch for unconditional triggers (split between them), the
    #: batch's source-class samples for a conditional per-(source, target)
    #: trigger.  The unstamped remainder anchors clean accuracy.
    stamp_fraction: float = 0.5

    def __post_init__(self) -> None:
        if self.epochs <= 0 or self.batch_size <= 0:
            raise ValueError("epochs and batch_size must be positive.")
        if self.learning_rate <= 0:
            raise ValueError("learning_rate must be positive.")
        if self.optimizer not in ("sgd", "adam"):
            raise ValueError("optimizer must be 'sgd' or 'adam'.")
        if not 0.0 < self.stamp_fraction <= 1.0:
            raise ValueError("stamp_fraction must be in (0, 1].")


@dataclass
class UnlearningReport:
    """What one :func:`trigger_unlearn` run did."""

    #: Triggers the fine-tune stamped, as ``"source->target"`` cell labels
    #: (``*`` encodes the unconditional source).
    cells: List[str] = field(default_factory=list)
    epochs: int = 0
    steps: int = 0
    #: Samples stamped per cell label across the whole run.
    stamped: Dict[str, int] = field(default_factory=dict)
    #: Mean training loss per epoch.
    loss_history: List[float] = field(default_factory=list)

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe payload (embedded in repair reports/records)."""
        return {
            "cells": list(self.cells),
            "epochs": int(self.epochs),
            "steps": int(self.steps),
            "stamped": {str(k): int(v) for k, v in self.stamped.items()},
            "loss_history": [float(v) for v in self.loss_history],
        }


def trigger_unlearn(model: Module, clean_data: Dataset,
                    triggers: Sequence[ReversedTrigger],
                    config: Optional[UnlearningConfig] = None,
                    rng: Optional[np.random.Generator] = None
                    ) -> UnlearningReport:
    """Fine-tune ``model`` so the reversed ``triggers`` stop flipping labels.

    Args:
        model: The flagged model, repaired **in place**.
        clean_data: Clean samples (the detector's clean set works); their
            true labels drive both the stamped and unstamped loss terms.
        triggers: Flagged reversed triggers (real ``pattern``/``mask``
            arrays, not compact store summaries).
        config: Fine-tuning budget and stamping fraction.
        rng: Randomness for batch shuffling and stamp selection.

    Returns:
        An :class:`UnlearningReport` with per-cell stamp counts and the
        loss history.
    """
    config = config or UnlearningConfig()
    rng = rng or np.random.default_rng()
    triggers = list(triggers)
    if not triggers:
        raise ValueError("trigger_unlearn needs at least one reversed trigger.")
    for trigger in triggers:
        if trigger.pattern.shape[-2:] != clean_data.images.shape[-2:]:
            raise ValueError(
                f"Trigger for cell {cell_label(trigger)} has spatial shape "
                f"{trigger.pattern.shape[-2:]}, clean data is "
                f"{clean_data.images.shape[-2:]} — repair needs full "
                "reversed triggers (compact store records carry norms only; "
                "re-run detection).")

    report = UnlearningReport(cells=[cell_label(t) for t in triggers],
                              epochs=config.epochs,
                              stamped={cell_label(t): 0 for t in triggers})
    if config.optimizer == "adam":
        optimizer = Adam(model.parameters(), lr=config.learning_rate)
    else:
        optimizer = SGD(model.parameters(), lr=config.learning_rate)
    loader = DataLoader(clean_data, batch_size=config.batch_size, shuffle=True,
                        rng=rng)
    model.train()
    model.requires_grad_(True)
    for _ in range(config.epochs):
        epoch_loss, batches = 0.0, 0
        for images, labels in loader:
            images = images.copy()
            # Each trigger stamps stamp_fraction of its own eligible pool:
            # conditional triggers draw from the batch's source-class
            # samples (their shortcut only fires there, so drawing from the
            # whole batch and filtering would starve them), unconditional
            # triggers split the full batch between themselves.  A sample
            # is stamped by at most one trigger per batch.
            taken = np.zeros(len(images), dtype=bool)
            unconditional = sum(t.source_class is None for t in triggers)
            for trigger in triggers:
                if trigger.source_class is not None:
                    eligible = np.where((labels == int(trigger.source_class))
                                        & ~taken)[0]
                    count = int(round(config.stamp_fraction * len(eligible)))
                    if len(eligible):
                        count = max(count, 1)
                else:
                    eligible = np.where(~taken)[0]
                    count = int(round(config.stamp_fraction * len(eligible)
                                      / max(unconditional, 1)))
                count = min(count, len(eligible))
                if count == 0:
                    continue
                slot = rng.choice(eligible, size=count, replace=False)
                images[slot] = blend_images(images[slot], trigger.pattern,
                                            trigger.mask)
                taken[slot] = True
                report.stamped[cell_label(trigger)] += count
            logits = model(Tensor(images))
            loss = F.cross_entropy(logits, labels)
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
            epoch_loss += loss.item()
            batches += 1
            report.steps += 1
        report.loss_history.append(epoch_loss / max(batches, 1))
    model.eval()
    return report
