#!/usr/bin/env python
"""End-to-end smoke test of the HTTP scan API, over real sockets.

Boots an :class:`~repro.service.api.ApiServer` on an ephemeral port
against a temp store, then drives one scan per routing strategy
(``thorough``, ``fastest``, ``cheapest``) through the real HTTP surface
with ``urllib`` and asserts:

1. every job round-trips submit -> poll -> result with a ``done`` status
   and a cost breakdown whose ``total_seconds`` equals the sum of its
   stage seconds,
2. ``thorough`` runs all three detectors while ``fastest`` and
   ``cheapest`` skip NC/TABOR on this clean model with an explicit
   clean-with-margin reason (and reuse the thorough run's USB verdict as
   a cache hit),
3. ``GET /v1/traces/<trace_id>`` returns a stitched span tree rooted at
   ``api.job`` for the first job, and
4. ``GET /metrics`` parses as valid Prometheus text exposition carrying
   the ``repro_http_*`` and ``repro_triage_*`` families next to the
   store-derived ``repro_*`` ones.

Run by ``make api-smoke`` (and CI).  Exits non-zero on any failure.
"""

from __future__ import annotations

import json
import os
import sys
import tempfile
import time
import urllib.request

_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(_ROOT, "src"))

import numpy as np  # noqa: E402

from repro.models import build_model  # noqa: E402
from repro.nn.serialization import save_model  # noqa: E402
from repro.obs import parse_prometheus_text  # noqa: E402
from repro.service.api import ApiServer  # noqa: E402

TINY = {"classes": [0, 1, 2], "clean_budget": 10, "samples_per_class": 3,
        "iterations": 2, "uap_passes": 1}

REQUIRED_FAMILIES = (
    "repro_http_requests_total",
    "repro_http_request_latency_seconds_count",
    "repro_triage_requests_total",
    "repro_triage_stages_run_total",
    "repro_triage_stages_skipped_total",
    "repro_store_scan_records",
)


def _fail(message: str) -> int:
    print(f"FAIL: {message}", file=sys.stderr)
    return 1


def _request(base: str, method: str, path: str, payload=None):
    """One HTTP round trip; returns (status code, decoded JSON body)."""
    data = json.dumps(payload).encode() if payload is not None else None
    req = urllib.request.Request(base + path, data=data, method=method)
    if data is not None:
        req.add_header("Content-Type", "application/json")
    with urllib.request.urlopen(req, timeout=60) as resp:
        body = resp.read().decode()
        return resp.status, (json.loads(body) if body else None)


def _poll_done(base: str, job_id: str, timeout: float = 300.0) -> dict:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        _, job = _request(base, "GET", f"/v1/jobs/{job_id}")
        if job["status"] in ("done", "failed"):
            return job
        time.sleep(0.1)
    raise TimeoutError(f"job {job_id} still {job['status']} after {timeout}s")


def main() -> int:
    """Run the smoke sequence; return a process exit code."""
    with tempfile.TemporaryDirectory(prefix="repro_api_smoke_") as tmp:
        checkpoint = os.path.join(tmp, "candidate.npz")
        model = build_model("basic_cnn", num_classes=10, in_channels=3,
                            image_size=12, rng=np.random.default_rng(0))
        save_model(model, checkpoint,
                   metadata={"model": "basic_cnn", "dataset": "cifar10",
                             "image_size": 12})

        server = ApiServer(os.path.join(tmp, "store"), port=0, job_retries=1)
        server.start()
        base = f"http://{server.host}:{server.port}"
        try:
            code, health = _request(base, "GET", "/healthz")
            if code != 200 or health.get("status") != "ok":
                return _fail(f"/healthz answered {code}: {health}")

            results = {}
            for strategy in ("thorough", "fastest", "cheapest"):
                code, submitted = _request(
                    base, "POST", "/v1/scans",
                    {"checkpoint": checkpoint, "strategy": strategy,
                     "tenant": f"smoke-{strategy}", **TINY})
                if code != 202:
                    return _fail(f"submit[{strategy}] answered {code}")
                job = _poll_done(base, submitted["job_id"])
                if job["status"] != "done":
                    return _fail(f"job[{strategy}] ended {job['status']}: "
                                 f"{job.get('error')}")
                _, full = _request(base, "GET",
                                   f"/v1/jobs/{job['job_id']}/result")
                results[strategy] = full

            # 1. + 2. Cost breakdowns: strategy semantics on a clean model.
            for strategy, full in results.items():
                breakdown = full["result"]["cost_breakdown"]
                ran = [s["detector"] for s in breakdown["stages"]]
                skipped = [s["detector"] for s in breakdown["skipped"]]
                total = breakdown["total_seconds"]
                paid = round(sum(s["seconds"] for s in breakdown["stages"]), 6)
                if total != paid:
                    return _fail(f"[{strategy}] total_seconds {total} != "
                                 f"sum of stages {paid}")
                if full["result"]["verdict"] != "clean":
                    return _fail(f"[{strategy}] verdict "
                                 f"{full['result']['verdict']} on clean model")
                if strategy == "thorough":
                    if ran != ["usb", "nc", "tabor"] or skipped:
                        return _fail(f"thorough ran {ran}, skipped {skipped}")
                else:
                    if ran != ["usb"] or skipped != ["nc", "tabor"]:
                        return _fail(f"[{strategy}] ran {ran}, "
                                     f"skipped {skipped}")
                    reasons = {s["reason"] for s in breakdown["skipped"]}
                    if not all("clean with margin" in r for r in reasons):
                        return _fail(f"[{strategy}] skip reasons {reasons}")
                    # The thorough run already paid for USB: cache hit.
                    if not breakdown["stages"][0]["cache_hit"]:
                        return _fail(f"[{strategy}] USB probe missed the "
                                     "cache after the thorough run")
                print(f"  {strategy:8s}: ran={ran} skipped={skipped} "
                      f"paid={total:.3f}s")

            # 3. Trace endpoint: stitched tree rooted at api.job.
            trace_id = results["thorough"]["trace_id"]
            code, trace = _request(base, "GET", f"/v1/traces/{trace_id}")
            if code != 200 or not trace["spans"]:
                return _fail(f"trace {trace_id} answered {code} with "
                             f"{trace}")
            names = {span["name"] for span in trace["spans"]}
            if "api.job" not in names or "scan.request" not in names:
                return _fail(f"trace missing expected spans: {sorted(names)}")

            # 4. /metrics: valid exposition with the API + triage families.
            with urllib.request.urlopen(base + "/metrics", timeout=60) as resp:
                text = resp.read().decode()
            try:
                samples = parse_prometheus_text(text)
            except ValueError as exc:
                return _fail(f"/metrics invalid: {exc}")
            missing = [n for n in REQUIRED_FAMILIES if n not in samples]
            if missing:
                return _fail(f"/metrics missing families {missing}")
        finally:
            server.close()

    print(f"api smoke OK: 3 strategies served over HTTP, trace stitched "
          f"({len(trace['spans'])} spans), /metrics valid "
          f"({len(samples)} families).")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
