#!/usr/bin/env python
"""End-to-end smoke test of the repair pipeline, through the real CLI.

Trains a bench-scale BadNet'd model (high attack success rate), saves it as
a metadata-tagged checkpoint, then drives ``python -m repro repair`` against
a sharded store and asserts the acceptance criteria of the mitigation
subsystem:

1. the pre-repair model has ASR > 0.9 on held-out data,
2. the CLI repair lowers the *true* ASR below 0.2 with a clean-accuracy
   drop of at most 3 points (measured outside the CLI, with the
   ground-truth attack the service never sees),
3. the repaired checkpoint round-trips through ``load_checkpoint`` /
   ``load_model``,
4. a :class:`~repro.service.records.RepairRecord` landed in the store with
   ``success=True``, and
5. a second identical CLI invocation is a store cache hit.

Run by ``make repair-smoke`` (and CI).  Exits non-zero on any failure.
"""

from __future__ import annotations

import os
import sys
import tempfile

_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(_ROOT, "src"))

import numpy as np  # noqa: E402

from repro.attacks import BadNetAttack  # noqa: E402
from repro.data import load_dataset  # noqa: E402
from repro.eval.trainer import (  # noqa: E402
    Trainer,
    TrainingConfig,
    evaluate_accuracy,
    evaluate_asr,
)
from repro.models import build_model  # noqa: E402
from repro.nn.serialization import save_model, load_model  # noqa: E402
from repro.service import ShardedResultStore  # noqa: E402
from repro.service.cli import main as cli_main  # noqa: E402

#: The dataset-family seed shared by training and the scan request (the
#: synthetic class prototypes are seed-keyed, so these must agree).
SEED = 3


def _fail(message: str) -> int:
    print(f"FAIL: {message}", file=sys.stderr)
    return 1


def main() -> int:
    """Run the smoke sequence; return a process exit code."""
    rng = np.random.default_rng
    train_set, test_set = load_dataset("mnist", samples_per_class=40,
                                       test_per_class=30, seed=SEED,
                                       image_size=16)
    attack = BadNetAttack(0, train_set.image_shape, patch_size=4,
                          poison_rate=0.25, location=(1, 1), rng=rng(13))
    model = build_model("basic_cnn", num_classes=10, in_channels=1,
                        image_size=16, rng=rng(12))
    trainer = Trainer(TrainingConfig(epochs=6, batch_size=32, lr=2e-3),
                      rng=rng(14))
    trained = trainer.train_backdoored(model, train_set, test_set, attack,
                                       seed=SEED)
    accuracy_before = trained.clean_accuracy
    asr_before = trained.attack_success_rate
    print(f"trained badnet bench model: acc={accuracy_before:.3f} "
          f"asr={asr_before:.3f}")
    if asr_before <= 0.9:
        return _fail(f"pre-repair ASR {asr_before:.3f} <= 0.9 — the smoke "
                     "model did not learn the backdoor.")

    with tempfile.TemporaryDirectory(prefix="repro_repair_smoke_") as tmp:
        checkpoint = os.path.join(tmp, "badnet.npz")
        store_path = os.path.join(tmp, "repairs")
        save_model(model, checkpoint,
                   metadata={"model": "basic_cnn", "dataset": "mnist",
                             "image_size": 16})

        repair_argv = [
            "repair", checkpoint, "--detector", "nc", "--strategy", "both",
            "--clean-budget", "150", "--samples-per-class", "10",
            "--iterations", "40", "--seed", str(SEED),
            "--unlearn-epochs", "2", "--learning-rate", "5e-4",
            "--stamp-fraction", "0.3", "--max-accuracy-drop", "3",
            "--store", store_path]
        rc = cli_main(repair_argv)
        if rc != 0:
            return _fail(f"repair exited {rc}")

        store = ShardedResultStore(store_path)
        repairs = store.repair_records()
        if len(repairs) != 1:
            return _fail(f"expected 1 repair record, found {len(repairs)}")
        record = repairs[0]
        if not record.was_backdoored:
            return _fail("detection did not flag the backdoored model.")
        if not record.success:
            return _fail(f"repair record not successful: {record.report}")
        if not record.repaired_checkpoint or \
                not os.path.exists(record.repaired_checkpoint):
            return _fail("repaired checkpoint missing on disk.")

        # Round-trip the repaired checkpoint and measure the *true* ASR —
        # the CLI only ever sees the reversed trigger, never the attack.
        repaired = build_model("basic_cnn", num_classes=10, in_channels=1,
                               image_size=16, rng=rng(0))
        load_model(repaired, record.repaired_checkpoint)
        accuracy_after = evaluate_accuracy(repaired, test_set)
        asr_after = evaluate_asr(repaired, test_set, attack, rng=rng(1))
        print(f"repaired model: acc={accuracy_after:.3f} asr={asr_after:.3f} "
              f"({record.repaired_checkpoint})")
        if asr_after >= 0.2:
            return _fail(f"post-repair ASR {asr_after:.3f} >= 0.2")
        if accuracy_before - accuracy_after > 0.03:
            return _fail(f"clean accuracy dropped "
                         f"{100 * (accuracy_before - accuracy_after):.1f} "
                         "points (> 3).")

        # Second invocation must be a store cache hit (no recompute).
        import contextlib
        import io
        import json
        buffer = io.StringIO()
        with contextlib.redirect_stdout(buffer):
            rc = cli_main(repair_argv + ["--json"])
        if rc != 0:
            return _fail(f"second repair exited {rc}")
        payload = json.loads(buffer.getvalue())
        if len(payload) != 1 or not payload[0].get("cache_hit"):
            return _fail("second repair invocation was not a cache hit.")

    print(f"repair smoke OK: ASR {asr_before:.3f} -> {asr_after:.3f}, "
          f"accuracy {100 * accuracy_before:.1f} -> "
          f"{100 * accuracy_after:.1f}, cache hit on second run.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
