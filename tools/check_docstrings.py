#!/usr/bin/env python
"""Docstring-coverage gate for the service/mitigation layers and detection core.

Every public module, class, function, and method in ``src/repro/service/``,
``src/repro/mitigation/``, and ``src/repro/core/detection.py`` must carry a
docstring (public = name not starting with ``_``; dunders and private
helpers are exempt).  Run by ``make docs-check`` and CI; exits 1 listing
every miss.

Usage::

    python tools/check_docstrings.py            # check the default targets
    python tools/check_docstrings.py PATH...    # check specific files/dirs
"""

from __future__ import annotations

import ast
import os
import sys
from typing import Iterator, List, Tuple

_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

DEFAULT_TARGETS = [
    os.path.join(_ROOT, "src", "repro", "service"),
    os.path.join(_ROOT, "src", "repro", "mitigation"),
    os.path.join(_ROOT, "src", "repro", "obs"),
    os.path.join(_ROOT, "src", "repro", "core", "detection.py"),
]


def _python_files(target: str) -> Iterator[str]:
    """Yield the ``.py`` files under a file-or-directory target, sorted."""
    if os.path.isfile(target):
        yield target
        return
    for dirpath, _dirnames, filenames in sorted(os.walk(target)):
        for name in sorted(filenames):
            if name.endswith(".py"):
                yield os.path.join(dirpath, name)


def _is_public(name: str) -> bool:
    return not name.startswith("_")


def _missing_in_class(node: ast.ClassDef) -> Iterator[Tuple[int, str]]:
    """Yield (lineno, description) for undocumented public members of a class."""
    for child in node.body:
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)) and \
                _is_public(child.name):
            if ast.get_docstring(child) is None:
                yield child.lineno, f"method {node.name}.{child.name}"


def check_file(path: str) -> List[str]:
    """All docstring-coverage violations in one file, formatted for output."""
    with open(path, "r", encoding="utf-8") as handle:
        tree = ast.parse(handle.read(), filename=path)
    relative = os.path.relpath(path, _ROOT)
    problems: List[str] = []
    if ast.get_docstring(tree) is None:
        problems.append(f"{relative}:1: missing module docstring")
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and \
                _is_public(node.name):
            if ast.get_docstring(node) is None:
                problems.append(f"{relative}:{node.lineno}: missing docstring "
                                f"for function {node.name}")
        elif isinstance(node, ast.ClassDef) and _is_public(node.name):
            if ast.get_docstring(node) is None:
                problems.append(f"{relative}:{node.lineno}: missing docstring "
                                f"for class {node.name}")
            for lineno, description in _missing_in_class(node):
                problems.append(f"{relative}:{lineno}: missing docstring "
                                f"for {description}")
    return problems


def main(argv=None) -> int:
    """CLI entry: check the targets, print violations, exit 1 on any."""
    targets = (argv if argv else sys.argv[1:]) or DEFAULT_TARGETS
    problems: List[str] = []
    checked = 0
    for target in targets:
        for path in _python_files(target):
            problems.extend(check_file(path))
            checked += 1
    if problems:
        print("\n".join(problems), file=sys.stderr)
        print(f"\n{len(problems)} missing docstring(s) across {checked} "
              "file(s).", file=sys.stderr)
        return 1
    print(f"docstring coverage OK ({checked} file(s)).")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
