#!/usr/bin/env python
"""Docstring-coverage gate — back-compat shim over repro-lint.

The check itself now lives in the lint framework as the
``docstring-coverage`` rule (:mod:`repro.analysis.rules.docstrings`); this
script keeps the historical entry point (``make docs-check``, CI, muscle
memory) alive by delegating to it.  ``python -m repro.analysis`` runs the
same rule alongside the rest of the suite.

Usage::

    python tools/check_docstrings.py            # check the default targets
    python tools/check_docstrings.py PATH...    # check specific files/dirs
"""

from __future__ import annotations

import os
import sys
from typing import List, Optional

_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(_ROOT, "src"))

from repro.analysis import run_lint  # noqa: E402 - path setup first
from repro.analysis.rules.docstrings import TARGETS  # noqa: E402


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry: run the docstring-coverage rule, exit 1 on any miss.

    With no arguments the rule's own target set applies (service/,
    mitigation/, obs/, analysis/, core/detection.py); explicit paths are
    checked in full, mirroring the original script.
    """
    targets = (argv if argv is not None else sys.argv[1:]) or None
    result = run_lint(root=_ROOT, targets=targets or list(TARGETS),
                      select=["docstring-coverage"], baseline=None,
                      ignore_scope=targets is not None)
    if not result.ok:
        for violation in result.violations:
            print(violation.format(), file=sys.stderr)
        print(f"\n{len(result.violations)} missing docstring(s) across "
              f"{result.files_checked} file(s).", file=sys.stderr)
        return 1
    print(f"docstring coverage OK ({result.files_checked} file(s)).")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
