#!/usr/bin/env python
"""End-to-end smoke test of the lease-based worker fleet, over real processes.

Four phases, each against its own temp store:

1. **Verdict parity, zero lost jobs.**  Scans two tiny checkpoints with two
   detectors through ``--backend inline``, then through a three-worker fleet
   (real ``python -m repro worker`` subprocesses), and asserts the fleet
   verdicts are identical to the serial ones and that every submitted fleet
   job ended ``done`` (none lost, none failed).
2. **Kill a worker mid-job.**  SIGKILLs a worker while it holds a lease on a
   sleeping probe job and asserts the lease expires, the job is requeued
   within its retry budget, and a freshly started worker completes it.
3. **HTTP fleet scan with a stitched trace.**  Boots an
   :class:`~repro.service.api.ApiServer` with ``backend="fleet"``, serves a
   ``thorough`` strategy scan through single-job workers, and asserts the
   ``/v1/traces/<trace_id>`` span tree is one tree rooted at ``api.job``
   spanning at least two distinct worker pids.
4. **Fleet metrics.**  Asserts ``GET /metrics`` exports the
   ``repro_fleet_*`` families for the fleet-backed server.

Run by ``make fleet-smoke`` (and CI).  Exits non-zero on any failure.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import tempfile
import time
import urllib.request

_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(_ROOT, "src"))

import numpy as np  # noqa: E402

from repro.models import build_model  # noqa: E402
from repro.nn.serialization import save_model  # noqa: E402
from repro.obs import parse_prometheus_text  # noqa: E402
from repro.service.api import ApiServer  # noqa: E402
from repro.service.fleet import FleetQueue, fleet_snapshot  # noqa: E402
from repro.service.records import ScanRequest  # noqa: E402
from repro.service.scheduler import ScanScheduler  # noqa: E402
from repro.service.store import open_store  # noqa: E402

TINY = {"classes": (0, 1, 2), "clean_budget": 10, "samples_per_class": 3,
        "iterations": 2, "uap_passes": 1}

FLEET_FAMILIES = (
    "repro_fleet_workers_live",
    "repro_fleet_leases_held",
    "repro_fleet_leases_expired_total",
    "repro_fleet_leases_requeued_total",
    "repro_fleet_jobs_done_total",
    "repro_fleet_jobs_failed_total",
    "repro_fleet_queue_depth",
)


def _fail(message: str) -> int:
    print(f"FAIL: {message}", file=sys.stderr)
    return 1


def _spawn_worker(store: str, *extra: str) -> subprocess.Popen:
    """Start one real ``python -m repro worker`` subprocess on ``store``."""
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [os.path.join(_ROOT, "src"),
         env.get("PYTHONPATH", "")]).rstrip(os.pathsep)
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "worker", store,
         "--poll-interval", "0.05", *extra],
        env=env, cwd=_ROOT,
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)


def _reap(workers) -> None:
    for proc in workers:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=10)


def _wait_for(check, timeout: float, message: str):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        value = check()
        if value is not None:
            return value
        time.sleep(0.05)
    raise TimeoutError(message)


def _verdict_view(record) -> dict:
    """The backend-independent slice of a record (execution fields dropped)."""
    return {
        "key": record.key,
        "detector": record.detector,
        "is_backdoored": record.is_backdoored,
        "flagged_classes": tuple(record.flagged_classes),
        "suspect_class": record.suspect_class,
        "anomaly_indices": record.detection.get("anomaly_indices"),
    }


def _phase_parity(tmp: str, checkpoints) -> int:
    """Phase 1: three-worker fleet verdicts == inline verdicts, no lost jobs."""
    requests = [ScanRequest(checkpoint=ckpt, detector=detector, **TINY)
                for ckpt in checkpoints for detector in ("usb", "nc")]

    inline_store = os.path.join(tmp, "store_inline")
    inline = ScanScheduler(store=open_store(inline_store), backend="inline")
    baseline = inline.scan(requests)

    fleet_store = os.path.join(tmp, "store_fleet")
    workers = [_spawn_worker(fleet_store, "--idle-timeout", "30")
               for _ in range(3)]
    try:
        fleet = ScanScheduler(store=open_store(fleet_store),
                              backend="fleet").scan(requests)
    finally:
        _reap(workers)

    for position, (serial, pooled) in enumerate(zip(baseline, fleet)):
        if _verdict_view(serial) != _verdict_view(pooled):
            return _fail(f"request {position}: fleet verdict diverged: "
                         f"{_verdict_view(serial)} != {_verdict_view(pooled)}")
    snapshot = fleet_snapshot(fleet_store)
    if snapshot["jobs_done"] != len(requests):
        return _fail(f"lost jobs: {snapshot['jobs_done']} done of "
                     f"{len(requests)} submitted ({snapshot})")
    if snapshot["jobs_failed"] or snapshot["jobs_queued"]:
        return _fail(f"fleet left failed/queued jobs behind: {snapshot}")
    print(f"  parity : {len(requests)} scans, fleet == inline verdicts, "
          f"{snapshot['jobs_done']} done / 0 lost")
    return 0


def _phase_kill_worker(tmp: str) -> int:
    """Phase 2: SIGKILL a leased worker; expiry requeues; a survivor finishes."""
    store = os.path.join(tmp, "store_kill")
    queue = FleetQueue(store, reader_id="smoke")
    job_id = queue.submit("probe", {"sleep": 2.0, "value": 7}, retries=1)
    victim = _spawn_worker(store, "--lease-seconds", "0.6", "--max-jobs", "1")
    survivor = None
    try:
        _wait_for(lambda: queue.poll([job_id])[job_id].owner, 30,
                  "no worker ever leased the probe job")
        victim.send_signal(signal.SIGKILL)
        victim.wait(timeout=10)
        survivor = _spawn_worker(store, "--lease-seconds", "0.6",
                                 "--max-jobs", "1")
        job = _wait_for(
            lambda: (queue.poll([job_id])[job_id]
                     if queue.poll([job_id])[job_id].status == "done"
                     else None),
            30, "job never completed after its worker was killed")
    finally:
        _reap([victim, survivor] if survivor else [victim])
    if job.attempts != 2:
        return _fail(f"expected 2 attempts (killed + survivor), "
                     f"got {job.attempts}")
    if job.result["pid"] != survivor.pid:
        return _fail(f"result pid {job.result['pid']} is not the "
                     f"survivor's ({survivor.pid})")
    snapshot = fleet_snapshot(store)
    if snapshot["leases_requeued_total"] < 1 or \
            snapshot["leases_expired_total"] < 1:
        return _fail(f"kill was not recovered via lease expiry: {snapshot}")
    print(f"  lease  : worker {victim.pid} killed mid-job; requeued on "
          f"expiry; worker {survivor.pid} completed attempt 2")
    return 0


def _request(base: str, method: str, path: str, payload=None):
    data = json.dumps(payload).encode() if payload is not None else None
    req = urllib.request.Request(base + path, data=data, method=method)
    if data is not None:
        req.add_header("Content-Type", "application/json")
    with urllib.request.urlopen(req, timeout=60) as resp:
        body = resp.read().decode()
        return resp.status, (json.loads(body) if body else None)


def _phase_http(tmp: str, checkpoint: str) -> int:
    """Phases 3+4: HTTP fleet scan with a multi-pid stitched trace + metrics."""
    store = os.path.join(tmp, "store_http")
    server = ApiServer(store, port=0, job_retries=1, backend="fleet")
    server.start()
    base = f"http://{server.host}:{server.port}"
    workers = [_spawn_worker(store, "--max-jobs", "1", "--idle-timeout", "60")
               for _ in range(3)]
    try:
        code, submitted = _request(
            base, "POST", "/v1/scans",
            {"checkpoint": checkpoint, "strategy": "thorough",
             "tenant": "smoke-fleet",
             **{k: list(v) if isinstance(v, tuple) else v
                for k, v in TINY.items()}})
        if code != 202:
            return _fail(f"fleet submit answered {code}")
        job = _wait_for(
            lambda: (_request(base, "GET",
                              f"/v1/jobs/{submitted['job_id']}")[1]
                     if _request(base, "GET",
                                 f"/v1/jobs/{submitted['job_id']}"
                                 )[1]["status"] in ("done", "failed")
                     else None),
            300, "HTTP fleet job never finished")
        if job["status"] != "done":
            return _fail(f"HTTP fleet job ended {job['status']}: "
                         f"{job.get('error')}")

        code, trace = _request(base, "GET",
                               f"/v1/traces/{submitted['trace_id']}")
        if code != 200 or not trace["spans"]:
            return _fail(f"trace endpoint answered {code}: {trace}")
        spans = trace["spans"]
        ids = {span["span_id"] for span in spans}
        roots = [span for span in spans if span["parent_id"] not in ids]
        if len(roots) != 1 or roots[0]["name"] != "api.job":
            return _fail("fleet trace is not one tree rooted at api.job: "
                         f"roots={[(s['name'], s['pid']) for s in roots]}")
        worker_pids = {span["pid"] for span in spans} - {os.getpid()}
        if len(worker_pids) < 2:
            return _fail(f"fleet trace spans {len(worker_pids)} worker "
                         f"pid(s), expected >= 2 ({sorted(worker_pids)})")

        with urllib.request.urlopen(base + "/metrics", timeout=60) as resp:
            text = resp.read().decode()
        samples = parse_prometheus_text(text)
        missing = [name for name in FLEET_FAMILIES if name not in samples]
        if missing:
            return _fail(f"/metrics missing fleet families {missing}")
    finally:
        _reap(workers)
        server.close()
    print(f"  http   : thorough scan served by the fleet; one trace tree "
          f"({len(spans)} spans) across {len(worker_pids)} worker pids; "
          f"repro_fleet_* families exported")
    return 0


def main() -> int:
    """Run the smoke sequence; return a process exit code."""
    with tempfile.TemporaryDirectory(prefix="repro_fleet_smoke_") as tmp:
        checkpoints = []
        for seed in (0, 1):
            path = os.path.join(tmp, f"candidate{seed}.npz")
            model = build_model("basic_cnn", num_classes=10, in_channels=3,
                                image_size=12,
                                rng=np.random.default_rng(seed))
            save_model(model, path,
                       metadata={"model": "basic_cnn", "dataset": "cifar10",
                                 "image_size": 12})
            checkpoints.append(path)

        for phase in (lambda: _phase_parity(tmp, checkpoints),
                      lambda: _phase_kill_worker(tmp),
                      lambda: _phase_http(tmp, checkpoints[0])):
            status = phase()
            if status:
                return status

    print("fleet smoke OK: 3-worker parity with inline, kill-recovery via "
          "lease expiry, multi-pid HTTP trace, fleet metrics.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
