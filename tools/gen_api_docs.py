#!/usr/bin/env python
"""Generate (or verify) ``docs/api.md`` from the public docstring surface.

The reference covers the curated ``__all__`` of the six public packages —
``repro.core``, ``repro.attacks``, ``repro.mitigation``, ``repro.service``,
``repro.obs``, ``repro.eval``, ``repro.analysis`` — and is
rendered purely from live docstrings and signatures, so it can never drift
from the code without ``--check`` (wired into ``make docs-check`` / CI)
failing.

Usage::

    python tools/gen_api_docs.py docs/api.md          # (re)generate
    python tools/gen_api_docs.py --check docs/api.md  # exit 1 on drift

Output is deterministic: symbols follow their package's ``__all__`` order,
method lists are sorted, and memory addresses are scrubbed from default
reprs.
"""

from __future__ import annotations

import argparse
import importlib
import inspect
import os
import re
import sys

_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(_ROOT, "src"))

PACKAGES = ["repro.core", "repro.attacks", "repro.mitigation",
            "repro.service", "repro.obs", "repro.eval", "repro.analysis"]

HEADER = """\
# API reference

<!-- GENERATED FILE - do not edit by hand.
     Regenerate with `make docs` (tools/gen_api_docs.py);
     `make docs-check` fails CI when this file is stale. -->

The public surface of the five user-facing packages, rendered from live
docstrings.  See [architecture.md](architecture.md) for how the layers fit
together and [ops.md](ops.md) for running the scanning service.
"""


def _signature(obj) -> str:
    """Best-effort deterministic signature text for a callable."""
    try:
        text = str(inspect.signature(obj))
    except (TypeError, ValueError):
        return "(...)"
    return re.sub(r" at 0x[0-9a-fA-F]+", "", text)


def _docstring(obj) -> str:
    doc = inspect.getdoc(obj)
    return doc.strip() if doc else "*(no docstring)*"


def _first_line(obj) -> str:
    return _docstring(obj).splitlines()[0]


def _class_section(name: str, obj) -> list:
    lines = [f"### `{name}{_signature(obj)}`", "", _docstring(obj), ""]
    methods = []
    for attr_name, attr in sorted(vars(obj).items()):
        if attr_name.startswith("_"):
            continue
        if isinstance(attr, property):
            methods.append(f"- `.{attr_name}` (property) — "
                           f"{_first_line(attr.fget or attr)}")
        elif inspect.isfunction(attr):
            methods.append(f"- `.{attr_name}{_signature(attr)}` — "
                           f"{_first_line(attr)}")
        elif isinstance(attr, classmethod):
            methods.append(f"- `.{attr_name}{_signature(attr.__func__)}` "
                           f"(classmethod) — {_first_line(attr.__func__)}")
        elif isinstance(attr, staticmethod):
            methods.append(f"- `.{attr_name}{_signature(attr.__func__)}` "
                           f"(staticmethod) — {_first_line(attr.__func__)}")
    if methods:
        lines += ["**Public methods:**", ""] + methods + [""]
    return lines


def _symbol_section(name: str, obj) -> list:
    if inspect.isclass(obj):
        return _class_section(name, obj)
    if inspect.isfunction(obj):
        return [f"### `{name}{_signature(obj)}`", "", _docstring(obj), ""]
    kind = type(obj).__name__
    summary = f"Constant of type `{kind}`."
    if isinstance(obj, dict):
        keys = ", ".join(f"`{k}`" for k in obj)
        summary += f"  Keys: {keys}."
    elif isinstance(obj, (tuple, list)) and all(isinstance(v, str) for v in obj):
        summary += "  Values: " + ", ".join(f"`{v}`" for v in obj) + "."
    elif isinstance(obj, str):
        summary += f"  Value: `{obj!r}`."
    return [f"### `{name}`", "", summary, ""]


def generate() -> str:
    """Render the full ``docs/api.md`` text."""
    lines = [HEADER]
    for package_name in PACKAGES:
        module = importlib.import_module(package_name)
        lines += [f"## `{package_name}`", "", _docstring(module), ""]
        for symbol in module.__all__:
            lines += _symbol_section(symbol, getattr(module, symbol))
    return "\n".join(lines).rstrip() + "\n"


def main(argv=None) -> int:
    """CLI entry: write the reference, or verify it with ``--check``."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("output", nargs="?", default="docs/api.md")
    parser.add_argument("--check", action="store_true",
                        help="Verify the file is current; do not write.")
    args = parser.parse_args(argv)
    text = generate()
    if args.check:
        try:
            with open(args.output, "r", encoding="utf-8") as handle:
                current = handle.read()
        except FileNotFoundError:
            current = ""
        if current != text:
            print(f"{args.output} is stale — regenerate with `make docs`.",
                  file=sys.stderr)
            return 1
        print(f"{args.output} is current.")
        return 0
    os.makedirs(os.path.dirname(os.path.abspath(args.output)), exist_ok=True)
    with open(args.output, "w", encoding="utf-8") as handle:
        handle.write(text)
    print(f"wrote {args.output} ({len(text.splitlines())} lines).")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
