#!/usr/bin/env python
"""End-to-end smoke test of the watch daemon, exercised through the real CLI.

Creates a temp drop directory, saves one (untrained, tiny) checkpoint into
it, runs ``python -m repro watch`` for a few bounded iterations with a job
timeout and retry budget, then asserts:

1. a verdict landed in the sharded result store,
2. the stats endpoint file exists with the documented metrics fields, and
3. ``python -m repro report`` surfaces both the record and the metrics.

Run by ``make daemon-smoke`` (and CI).  Exits non-zero on any failure.
"""

from __future__ import annotations

import json
import os
import sys
import tempfile

_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(_ROOT, "src"))

import numpy as np  # noqa: E402

from repro.models import build_model  # noqa: E402
from repro.nn.serialization import save_model  # noqa: E402
from repro.service import ShardedResultStore  # noqa: E402
from repro.service.cli import main as cli_main  # noqa: E402

REQUIRED_STATS_FIELDS = (
    "scans_served", "cache_hits", "cache_misses", "cache_hit_ratio",
    "latency_p50_s", "latency_p95_s", "failures", "retries", "queue_depth",
    "checkpoints_seen", "iterations", "updated_at",
)


def main() -> int:
    """Run the smoke sequence; return a process exit code."""
    with tempfile.TemporaryDirectory(prefix="repro_daemon_smoke_") as tmp:
        drop = os.path.join(tmp, "drop")
        store_path = os.path.join(tmp, "scans")
        os.makedirs(drop)
        model = build_model("basic_cnn", num_classes=10, in_channels=3,
                            image_size=12, rng=np.random.default_rng(0))
        save_model(model, os.path.join(drop, "candidate.npz"),
                   metadata={"model": "basic_cnn", "dataset": "cifar10",
                             "image_size": 12})

        rc = cli_main([
            "watch", drop, "--store", store_path, "--detectors", "usb",
            "--poll-interval", "0.1", "--settle-polls", "1",
            "--max-iterations", "4", "--job-timeout", "300", "--retries", "1",
            "--classes", "0,1,2", "--clean-budget", "10",
            "--samples-per-class", "3", "--iterations", "2"])
        if rc != 0:
            print(f"FAIL: watch exited {rc}", file=sys.stderr)
            return 1

        store = ShardedResultStore(store_path)
        records = store.records()
        if len(records) != 1:
            print(f"FAIL: expected 1 store record, found {len(records)}",
                  file=sys.stderr)
            return 1
        record = records[0]
        if record.detector != "USB" or not record.checkpoint.endswith(
                "candidate.npz"):
            print(f"FAIL: unexpected record {record.as_row()}", file=sys.stderr)
            return 1

        stats_path = os.path.join(store_path, "stats.json")
        if not os.path.exists(stats_path):
            print(f"FAIL: stats endpoint {stats_path} missing", file=sys.stderr)
            return 1
        stats = json.load(open(stats_path))
        missing = [f for f in REQUIRED_STATS_FIELDS if f not in stats]
        if missing:
            print(f"FAIL: stats missing fields {missing}", file=sys.stderr)
            return 1
        if stats["scans_served"] != 1 or stats["failures"] != 0:
            print(f"FAIL: unexpected stats {stats}", file=sys.stderr)
            return 1

        rc = cli_main(["report", "--store", store_path])
        if rc != 0:
            print(f"FAIL: report exited {rc}", file=sys.stderr)
            return 1

    print("daemon smoke OK: checkpoint scanned, verdict stored, "
          "metrics published.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
