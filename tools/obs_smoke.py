#!/usr/bin/env python
"""End-to-end smoke test of the observability surface, through the real CLI.

Drives one daemon cycle over a temp drop directory (telemetry on, the
default), then asserts:

1. ``metrics.prom`` exists beside ``stats.json`` and parses as valid
   Prometheus text exposition (cumulative buckets, ``+Inf`` == ``_count``)
   with the per-detector scan-latency histogram and the activation-cache
   hit-ratio gauge present,
2. ``spans.jsonl`` holds exactly one stitched trace whose spans come from
   at least two pids (daemon parent + scan child), and
3. ``python -m repro trace`` lists the trace and renders a non-trivial
   span tree for it, and ``python -m repro metrics`` re-renders a valid
   exposition offline.

Run by ``make obs-smoke`` (and CI).  Exits non-zero on any failure.
"""

from __future__ import annotations

import contextlib
import io
import os
import sys
import tempfile

_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(_ROOT, "src"))

import numpy as np  # noqa: E402

from repro.models import build_model  # noqa: E402
from repro.nn.serialization import save_model  # noqa: E402
from repro.obs import parse_prometheus_text, read_spans  # noqa: E402
from repro.service.cli import main as cli_main  # noqa: E402

REQUIRED_FAMILIES = (
    "repro_scan_latency_seconds_count",
    "repro_activation_cache_hit_ratio",
    "repro_scans_served_total",
    "repro_store_scan_records",
)


def _fail(message: str) -> int:
    print(f"FAIL: {message}", file=sys.stderr)
    return 1


def main() -> int:
    """Run the smoke sequence; return a process exit code."""
    with tempfile.TemporaryDirectory(prefix="repro_obs_smoke_") as tmp:
        drop = os.path.join(tmp, "drop")
        store_path = os.path.join(tmp, "scans")
        os.makedirs(drop)
        model = build_model("basic_cnn", num_classes=10, in_channels=3,
                            image_size=12, rng=np.random.default_rng(0))
        save_model(model, os.path.join(drop, "candidate.npz"),
                   metadata={"model": "basic_cnn", "dataset": "cifar10",
                             "image_size": 12})

        rc = cli_main([
            "watch", drop, "--store", store_path, "--detectors", "usb",
            "--poll-interval", "0.1", "--settle-polls", "1",
            "--max-iterations", "4", "--job-timeout", "300", "--retries", "1",
            "--classes", "0,1,2", "--clean-budget", "10",
            "--samples-per-class", "3", "--iterations", "2"])
        if rc != 0:
            return _fail(f"watch exited {rc}")

        # 1. metrics.prom: present and a valid exposition.
        prom_path = os.path.join(store_path, "metrics.prom")
        if not os.path.exists(prom_path):
            return _fail(f"{prom_path} missing")
        try:
            samples = parse_prometheus_text(open(prom_path).read())
        except ValueError as exc:
            return _fail(f"metrics.prom invalid: {exc}")
        missing = [name for name in REQUIRED_FAMILIES if name not in samples]
        if missing:
            return _fail(f"metrics.prom missing families {missing}")
        if samples["repro_scans_served_total"][0][1] != 1.0:
            return _fail("expected exactly one served scan in metrics.prom")

        # 2. spans.jsonl: one stitched cross-process trace.
        spans = read_spans(os.path.join(store_path, "spans.jsonl"))
        trace_ids = {span["trace_id"] for span in spans}
        if len(trace_ids) != 1:
            return _fail(f"expected 1 trace, found {len(trace_ids)}")
        trace_id = trace_ids.pop()
        pids = {span["pid"] for span in spans}
        if len(pids) < 2:
            return _fail(f"trace spans all from one pid {pids} — "
                         "child spans did not stitch")
        names = {span["name"] for span in spans}
        if "daemon.job" not in names or "worker.scan" not in names:
            return _fail(f"trace missing expected spans, got {sorted(names)}")

        # 3. CLI round trips: listing, tree render, offline metrics.
        listing = io.StringIO()
        with contextlib.redirect_stdout(listing):
            rc = cli_main(["trace", "--store", store_path])
        if rc != 0 or trace_id not in listing.getvalue():
            return _fail("repro trace listing did not show the trace")
        tree = io.StringIO()
        with contextlib.redirect_stdout(tree):
            rc = cli_main(["trace", trace_id, "--store", store_path])
        rendered = tree.getvalue()
        if rc != 0 or rendered.count("\n") < 3:
            return _fail(f"repro trace rendered a trivial tree:\n{rendered}")
        if "worker.scan" not in rendered:
            return _fail("rendered tree lacks the worker-side span")
        offline = io.StringIO()
        with contextlib.redirect_stdout(offline):
            rc = cli_main(["metrics", "--store", store_path])
        if rc != 0:
            return _fail(f"repro metrics exited {rc}")
        try:
            parse_prometheus_text(offline.getvalue())
        except ValueError as exc:
            return _fail(f"offline metrics invalid: {exc}")

    print(f"obs smoke OK: 1 stitched trace ({len(spans)} spans, "
          f"{len(pids)} pids), metrics.prom valid, CLI round trips.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
