PYTHON ?= python
PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))
export PYTHONPATH

# Hard wall-clock budget for the tier-1 unit suite (seconds).
TIER1_TIMEOUT ?= 120
# Budget for the scenario-matrix smoke run (seconds).
SCENARIOS_TIMEOUT ?= 300

.PHONY: test tier1 lint lint-baseline bench bench-detection examples scenarios docs docs-check daemon-smoke repair-smoke mega-smoke obs-smoke api-smoke fleet-smoke

## Tier-1 unit suite (tests/ only; benchmarks/ are excluded via pytest.ini).
test: tier1
tier1:
	timeout $(TIER1_TIMEOUT) $(PYTHON) -m pytest -x -q

## Full paper-scale benchmark suite (slow: trains one model per table).
bench:
	$(PYTHON) -m pytest benchmarks/ -q

## Detection-speed regression harness: refreshes BENCH_detection.json.
bench-detection:
	$(PYTHON) -m pytest benchmarks/test_table7_timing.py -q

## Scenario-matrix smoke: tiny BadNet grid over the scenario axis
## (all-to-one, source-conditional, all-to-all) through train -> pair scan.
scenarios:
	timeout $(SCENARIOS_TIMEOUT) $(PYTHON) -m repro experiment \
	  --table table5 --scale bench \
	  --scenarios all_to_one,source_conditional,all_to_all \
	  --cases badnet_3x3 --detectors usb --seed 1

## repro-lint: AST-based invariant checker (RNG, digest, lock, telemetry,
## wall-clock, exception, docstring discipline).  Fails on any violation
## not covered by an inline suppression or tools/lint_baseline.json.
lint:
	$(PYTHON) -m repro.analysis

## Regenerate the lint baseline in place, keeping existing justifications.
## New entries get a TODO justification that must be filled in by hand.
lint-baseline:
	$(PYTHON) -m repro.analysis --update-baseline

## Regenerate docs/api.md from the live public docstring surface.
docs:
	$(PYTHON) tools/gen_api_docs.py docs/api.md

## Docs gate: docstring coverage (service layer + detection core) and
## docs/api.md freshness.  Run by CI; fails on drift.
docs-check:
	$(PYTHON) tools/check_docstrings.py
	$(PYTHON) tools/gen_api_docs.py --check docs/api.md

## Daemon smoke: watch a temp drop dir through the real CLI, drop one
## checkpoint, assert a verdict lands in the store and metrics publish.
daemon-smoke:
	$(PYTHON) tools/daemon_smoke.py

## Repair smoke: train a bench badnet model, drive the real
## `python -m repro repair` CLI (scan -> repair -> verify), and assert the
## true ASR drops >0.9 -> <0.2 within the clean-accuracy guardrail.
repair-smoke:
	$(PYTHON) tools/repair_smoke.py

## Observability smoke: one daemon cycle with telemetry on; asserts
## metrics.prom parses as valid exposition and `repro trace` renders a
## stitched cross-process span tree.
obs-smoke:
	$(PYTHON) tools/obs_smoke.py

## API smoke: boot the HTTP server on an ephemeral port, run one scan
## per routing strategy over real sockets, assert strategy semantics,
## cost accounting, trace stitching, and that /metrics parses.
api-smoke:
	$(PYTHON) tools/api_smoke.py

## Fleet smoke: three real `python -m repro worker` processes + a
## submitter against temp stores — inline-identical verdicts with zero
## lost jobs, kill-a-worker recovery via lease-expiry requeue, and an
## HTTP fleet scan whose stitched trace spans >= 2 worker pids.
fleet-smoke:
	$(PYTHON) tools/fleet_smoke.py

## Mega-batch parity smoke (fast; tiny model, 4 classes): flagged classes
## identical across sequential/batched/mega, exact match without cascade.
mega-smoke:
	$(PYTHON) -m pytest -q tests/test_mega_batch.py -k \
	  "TestModeParity or TestPoolMechanics"

## Smoke-run every example end to end (slowest last; ~minutes on a CPU).
examples:
	$(PYTHON) examples/quickstart.py
	$(PYTHON) examples/compare_detectors.py
	$(PYTHON) examples/reuse_uap_across_models.py
	$(PYTHON) examples/dynamic_backdoor_iad.py
	$(PYTHON) examples/scan_service.py
