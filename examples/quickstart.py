"""Quickstart: train a backdoored model and detect it with USB.

This is the smallest end-to-end use of the public API:

1. build a synthetic CIFAR-10-like dataset,
2. train a small CNN with a BadNet patch backdoor,
3. run the USB detector (targeted UAP -> Alg. 2 trigger optimization -> MAD
   outlier test), and
4. print the per-class reversed-trigger norms and the detection verdict.

Run with:  python examples/quickstart.py
"""

import numpy as np

from repro.attacks import BadNetAttack
from repro.core import TargetedUAPConfig, TriggerOptimizationConfig, USBConfig, USBDetector
from repro.data import load_cifar10, stratified_sample
from repro.eval import Trainer, TrainingConfig
from repro.models import build_model

SEED = 0
TARGET_CLASS = 0


def main() -> None:
    # 1. Data: a synthetic stand-in for CIFAR-10 (see DESIGN.md for why).
    train_set, test_set = load_cifar10(samples_per_class=60, test_per_class=15,
                                       seed=SEED, image_size=24)

    # 2. Train a backdoored model: BadNet 3x3 patch, 10% poisoning.
    model = build_model("basic_cnn", num_classes=10, in_channels=3, image_size=24,
                        rng=np.random.default_rng(SEED))
    attack = BadNetAttack(TARGET_CLASS, train_set.image_shape, patch_size=3,
                          poison_rate=0.1, rng=np.random.default_rng(SEED + 1))
    trainer = Trainer(TrainingConfig(epochs=8), rng=np.random.default_rng(SEED + 2))
    trained = trainer.train_backdoored(model, train_set, test_set, attack)
    print(f"clean accuracy = {trained.clean_accuracy:.2%}, "
          f"attack success rate = {trained.attack_success_rate:.2%}")

    # 3. Detect: USB only needs a small clean sample (the paper uses 300 images).
    clean_sample = stratified_sample(test_set, 100, np.random.default_rng(SEED + 3))
    detector = USBDetector(
        clean_sample,
        USBConfig(uap=TargetedUAPConfig(desired_error_rate=0.6, max_passes=2),
                  optimization=TriggerOptimizationConfig(iterations=60)),
        rng=np.random.default_rng(SEED + 4))
    result = detector.detect(trained.model)

    # 4. Report.
    print("\nper-class reversed-trigger L1 norms:")
    for cls, norm in sorted(result.per_class_l1.items()):
        marker = "  <-- true target" if cls == TARGET_CLASS else ""
        print(f"  class {cls}: {norm:8.2f}   anomaly index "
              f"{result.anomaly_indices[cls]:.2f}{marker}")
    verdict = "BACKDOORED" if result.is_backdoored else "clean"
    print(f"\nverdict: {verdict}; flagged classes: {result.flagged_classes}")


if __name__ == "__main__":
    main()
