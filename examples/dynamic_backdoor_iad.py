"""Detect an Input-Aware Dynamic (IAD) backdoor — where NC-style methods fail.

The paper's Table 3 headline: Neural Cleanse and TABOR detect 0/15 models
backdoored with the input-aware dynamic attack, while USB detects all of them
with the correct target class.  The reason is that IAD triggers span the whole
image, change with every input, and contain no fixed pattern that a
random-start mask optimization could recover — but the targeted UAP still
finds the shortcut the backdoor carved into the decision boundary.

This example trains one IAD-backdoored model (joint classifier/generator
training), then runs NC and USB on it and prints both verdicts.

Run with:  python examples/dynamic_backdoor_iad.py
"""

import numpy as np

from repro.attacks import InputAwareDynamicAttack
from repro.core import TargetedUAPConfig, TriggerOptimizationConfig, USBConfig, USBDetector
from repro.data import load_cifar10, stratified_sample
from repro.defenses import NeuralCleanseConfig, NeuralCleanseDetector
from repro.eval import Trainer, TrainingConfig, format_rows
from repro.models import build_model

SEED = 11
TARGET_CLASS = 4


def main() -> None:
    train_set, test_set = load_cifar10(samples_per_class=50, test_per_class=12,
                                       seed=SEED, image_size=24)

    model = build_model("basic_cnn", num_classes=10, in_channels=3, image_size=24,
                        rng=np.random.default_rng(SEED))
    attack = InputAwareDynamicAttack(TARGET_CLASS, train_set.image_shape,
                                     backdoor_rate=0.15, cross_rate=0.1,
                                     rng=np.random.default_rng(SEED + 1))
    trainer = Trainer(TrainingConfig(epochs=9), rng=np.random.default_rng(SEED + 2))
    trained = trainer.train_backdoored(model, train_set, test_set, attack)
    print(f"clean accuracy = {trained.clean_accuracy:.2%}, "
          f"IAD attack success rate = {trained.attack_success_rate:.2%}")

    clean_sample = stratified_sample(test_set, 100, np.random.default_rng(SEED + 3))
    nc = NeuralCleanseDetector(clean_sample, NeuralCleanseConfig(
        optimization=TriggerOptimizationConfig(iterations=100, ssim_weight=0.0)),
        rng=np.random.default_rng(SEED + 4))
    usb = USBDetector(clean_sample, USBConfig(
        uap=TargetedUAPConfig(max_passes=2),
        optimization=TriggerOptimizationConfig(iterations=60)),
        rng=np.random.default_rng(SEED + 5))

    rows = []
    for name, detector in (("NC", nc), ("USB", usb)):
        result = detector.detect(trained.model)
        rows.append({
            "method": name,
            "verdict": "backdoored" if result.is_backdoored else "clean",
            "flagged": result.flagged_classes,
            "true_target": TARGET_CLASS,
            "target_l1": round(result.per_class_l1[TARGET_CLASS], 2),
            "median_l1": round(result.median_l1, 2),
        })
    print("\n" + format_rows(rows, title="IAD detection (paper Table 3 scenario)"))


if __name__ == "__main__":
    main()
