"""Scanning service demo: fingerprinted checkpoints, cached scans, a grid run.

The workflow mirrors production use of ``python -m repro``:

1. train one clean and one BadNet-backdoored model,
2. save each as a metadata-tagged ``.npz`` checkpoint (so the CLI can
   rebuild the architecture from the file alone),
3. ``scan`` the backdoored checkpoint — then scan it again and watch the
   result store turn the repeat into a cache hit,
4. fan a checkpoint x detector ``grid`` across two worker processes, and
5. ``report`` everything the store has seen.

Run with:  python examples/scan_service.py
"""

import os
import tempfile

import numpy as np

from repro.attacks import BadNetAttack
from repro.data import load_cifar10
from repro.eval import Trainer, TrainingConfig
from repro.models import build_model
from repro.nn.serialization import save_model
from repro.service.cli import main as repro_cli

SEED = 0
IMAGE_SIZE = 20


def train_checkpoints(workdir: str) -> list:
    """Train one clean and one backdoored model; save tagged checkpoints."""
    train_set, test_set = load_cifar10(samples_per_class=40, test_per_class=10,
                                       seed=SEED, image_size=IMAGE_SIZE)
    metadata = {"model": "basic_cnn", "dataset": "cifar10",
                "image_size": IMAGE_SIZE}
    checkpoints = []

    clean_model = build_model("basic_cnn", num_classes=10, in_channels=3,
                              image_size=IMAGE_SIZE,
                              rng=np.random.default_rng(SEED))
    trainer = Trainer(TrainingConfig(epochs=5), rng=np.random.default_rng(SEED + 1))
    trained = trainer.train_clean(clean_model, train_set, test_set)
    path = os.path.join(workdir, "clean.npz")
    save_model(trained.model, path, metadata=metadata)
    print(f"clean model: accuracy={trained.clean_accuracy:.2%} -> {path}")
    checkpoints.append(path)

    backdoored = build_model("basic_cnn", num_classes=10, in_channels=3,
                             image_size=IMAGE_SIZE,
                             rng=np.random.default_rng(SEED + 2))
    attack = BadNetAttack(0, train_set.image_shape, patch_size=3,
                          poison_rate=0.1, rng=np.random.default_rng(SEED + 3))
    trained = trainer.train_backdoored(backdoored, train_set, test_set, attack)
    path = os.path.join(workdir, "badnet.npz")
    save_model(trained.model, path, metadata=metadata)
    print(f"badnet model: accuracy={trained.clean_accuracy:.2%} "
          f"asr={trained.attack_success_rate:.2%} -> {path}")
    checkpoints.append(path)
    return checkpoints


def main() -> None:
    with tempfile.TemporaryDirectory(prefix="repro-scan-demo-") as workdir:
        clean_ckpt, badnet_ckpt = train_checkpoints(workdir)
        store = os.path.join(workdir, "scan_results.jsonl")
        budget = ["--clean-budget", "60", "--samples-per-class", "15",
                  "--iterations", "40", "--store", store]

        print("\n--- python -m repro scan (first run: computed) ---")
        repro_cli(["scan", badnet_ckpt, "--detector", "usb"] + budget)

        print("\n--- python -m repro scan (identical request: cache hit) ---")
        repro_cli(["scan", badnet_ckpt, "--detector", "usb"] + budget)

        print("\n--- python -m repro grid (2 checkpoints x 2 detectors, "
              "2 workers) ---")
        repro_cli(["grid", clean_ckpt, badnet_ckpt, "--detectors", "usb,nc",
                   "--workers", "2"] + budget)

        print("\n--- python -m repro report ---")
        repro_cli(["report", "--store", store])


if __name__ == "__main__":
    main()
