"""Compare USB against Neural Cleanse and TABOR on the same backdoored model.

This mirrors the paper's Tables 1/4/5 workflow for a single model: train one
BadNet-backdoored network, give every detector the same small clean sample,
and print a side-by-side comparison of reversed-trigger norms, verdicts and
wall-clock time (the §4.4 / Table 7 measurement).

Run with:  python examples/compare_detectors.py
"""

import numpy as np

from repro.attacks import BadNetAttack
from repro.core import TargetedUAPConfig, TriggerOptimizationConfig, USBConfig, USBDetector
from repro.data import load_cifar10, stratified_sample
from repro.defenses import (
    NeuralCleanseConfig,
    NeuralCleanseDetector,
    TaborConfig,
    TaborDetector,
)
from repro.eval import Trainer, TrainingConfig, format_rows, measure_detection_times
from repro.models import build_model

SEED = 3
TARGET_CLASS = 2


def main() -> None:
    train_set, test_set = load_cifar10(samples_per_class=60, test_per_class=15,
                                       seed=SEED, image_size=24)
    model = build_model("resnet18", num_classes=10, in_channels=3, base_width=8,
                        rng=np.random.default_rng(SEED))
    attack = BadNetAttack(TARGET_CLASS, train_set.image_shape, patch_size=3,
                          poison_rate=0.1, rng=np.random.default_rng(SEED + 1))
    trained = Trainer(TrainingConfig(epochs=7),
                      rng=np.random.default_rng(SEED + 2)).train_backdoored(
        model, train_set, test_set, attack)
    print(f"clean accuracy = {trained.clean_accuracy:.2%}, "
          f"ASR = {trained.attack_success_rate:.2%}")

    clean_sample = stratified_sample(test_set, 100, np.random.default_rng(SEED + 3))
    rng = np.random.default_rng(SEED + 4)
    # The baselines run more iterations than USB, as in the paper (NC/TABOR use
    # the whole training set and long optimizations; USB uses a UAP seed).
    detectors = {
        "NC": NeuralCleanseDetector(clean_sample, NeuralCleanseConfig(
            optimization=TriggerOptimizationConfig(iterations=120, ssim_weight=0.0)),
            rng=rng),
        "TABOR": TaborDetector(clean_sample, TaborConfig(
            optimization=TriggerOptimizationConfig(iterations=120, ssim_weight=0.0,
                                                   mask_tv_weight=0.002,
                                                   outside_pattern_weight=0.002)),
            rng=rng),
        "USB": USBDetector(clean_sample, USBConfig(
            uap=TargetedUAPConfig(max_passes=1),
            optimization=TriggerOptimizationConfig(iterations=50)), rng=rng),
    }

    rows = []
    for name, detector in detectors.items():
        result = detector.detect(trained.model)
        rows.append({
            "method": name,
            "verdict": "backdoored" if result.is_backdoored else "clean",
            "flagged": result.flagged_classes,
            "target_l1": round(result.per_class_l1[TARGET_CLASS], 2),
            "median_l1": round(result.median_l1, 2),
            "seconds": round(result.seconds_total, 1),
        })
    print("\n" + format_rows(rows, title="Detection comparison (true target = "
                                          f"class {TARGET_CLASS})"))

    timing = measure_detection_times(trained.model, detectors, classes=range(3),
                                     case_name="badnet_3x3")
    print("\n" + format_rows(timing.rows(), title="Per-class detection time"))
    print(f"\nUSB speedup over NC:    {timing.speedup_over('NC'):.1f}x")
    print(f"USB speedup over TABOR: {timing.speedup_over('TABOR'):.1f}x")


if __name__ == "__main__":
    main()
