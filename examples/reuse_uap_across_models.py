"""Reuse targeted UAPs across similar models (the paper's §4.4 amortization).

The paper argues that USB's UAP-generation cost is amortizable: "the UAP can
be used for different models with similar architecture; we only need to
generate it once."  This example:

1. trains two backdoored models of the same architecture (different seeds,
   same trigger target),
2. generates targeted UAPs on the first model,
3. seeds the USB detector for the *second* model with those UAPs
   (``USBDetector.seed_uaps``), skipping Alg. 1 entirely, and
4. shows that detection still succeeds and how much wall clock the reuse saves.

Run with:  python examples/reuse_uap_across_models.py
"""

import time

import numpy as np

from repro.attacks import BadNetAttack
from repro.core import TargetedUAPConfig, TriggerOptimizationConfig, USBConfig, USBDetector
from repro.data import load_cifar10, stratified_sample
from repro.eval import Trainer, TrainingConfig
from repro.models import build_model

SEED = 21
TARGET_CLASS = 1


def train_backdoored(seed: int, train_set, test_set):
    model = build_model("basic_cnn", num_classes=10, in_channels=3, image_size=24,
                        rng=np.random.default_rng(seed))
    attack = BadNetAttack(TARGET_CLASS, train_set.image_shape, patch_size=3,
                          poison_rate=0.1, rng=np.random.default_rng(seed + 1))
    trainer = Trainer(TrainingConfig(epochs=8), rng=np.random.default_rng(seed + 2))
    return trainer.train_backdoored(model, train_set, test_set, attack)


def main() -> None:
    train_set, test_set = load_cifar10(samples_per_class=50, test_per_class=12,
                                       seed=SEED, image_size=24)
    model_a = train_backdoored(SEED, train_set, test_set)
    model_b = train_backdoored(SEED + 100, train_set, test_set)
    print(f"model A: acc={model_a.clean_accuracy:.2%} asr={model_a.attack_success_rate:.2%}")
    print(f"model B: acc={model_b.clean_accuracy:.2%} asr={model_b.attack_success_rate:.2%}")

    clean_sample = stratified_sample(test_set, 100, np.random.default_rng(SEED + 3))
    config = USBConfig(uap=TargetedUAPConfig(max_passes=2),
                       optimization=TriggerOptimizationConfig(iterations=50))

    # Full USB run on model A (generates UAPs).
    detector_a = USBDetector(clean_sample, config, rng=np.random.default_rng(1))
    start = time.perf_counter()
    result_a = detector_a.detect(model_a.model)
    time_a = time.perf_counter() - start
    print(f"\nmodel A detection: {result_a.flagged_classes} in {time_a:.1f}s")

    # USB on model B, reusing A's UAPs (Alg. 1 skipped).
    detector_b = USBDetector(clean_sample, config, rng=np.random.default_rng(2))
    detector_b.seed_uaps(detector_a.last_uaps)
    start = time.perf_counter()
    result_b = detector_b.detect(model_b.model)
    time_b = time.perf_counter() - start
    print(f"model B detection (reused UAPs): {result_b.flagged_classes} in {time_b:.1f}s")
    print(f"\nwall-clock saved by UAP reuse: {time_a - time_b:.1f}s "
          f"({time_a / max(time_b, 1e-9):.1f}x faster)")


if __name__ == "__main__":
    main()
